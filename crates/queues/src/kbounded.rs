//! A *deterministic* k-relaxed priority queue.
//!
//! [`RotatingKQueue`] satisfies the paper's two scheduler properties
//! (Section 2) **unconditionally**, not just with high probability:
//!
//! * **RankBound** — `peek_relaxed` always returns one of the `k` smallest
//!   stored elements (it returns the `(c mod min(k, len))`-th smallest, where
//!   `c` is an internal call counter);
//! * **Fairness** — the cursor cycles through positions `0, 1, …`, hitting
//!   position 0 (the exact minimum) at least once every `min(k, len) ≤ k`
//!   calls, so `inv(u) ≤ k − 1` for every element `u`.
//!
//! Deterministic structures with this flavour of guarantee exist in the
//! literature (e.g. the k-LSM of Wimmer et al., which the paper cites as a
//! scheduler that "enforces these properties deterministically"); the
//! rotating queue is the simplest possible such structure and doubles as a
//! *worst-case-ish* deterministic scheduler for the executor tests: it
//! spreads returned ranks uniformly over the full allowed window instead of
//! favouring the minimum.

use crate::RelaxedQueue;
use std::collections::BTreeSet;

/// Deterministic k-relaxed queue backed by an ordered set; `peek_relaxed`
/// rotates through the top `min(k, len)` positions.
///
/// # Examples
///
/// ```
/// use rsched_queues::{RotatingKQueue, RelaxedQueue};
///
/// let mut q = RotatingKQueue::new(3);
/// for i in 0..6usize {
///     q.insert(i, i as u64 * 10);
/// }
/// // Successive peeks rotate over the 3 smallest elements.
/// assert_eq!(q.peek_relaxed(), Some((0, 0)));
/// assert_eq!(q.peek_relaxed(), Some((1, 10)));
/// assert_eq!(q.peek_relaxed(), Some((2, 20)));
/// assert_eq!(q.peek_relaxed(), Some((0, 0)));
/// ```
#[derive(Clone, Debug)]
pub struct RotatingKQueue<P> {
    set: BTreeSet<(P, usize)>,
    /// `prio_of[item]` = current priority (needed to address the set).
    prio_of: Vec<Option<P>>,
    k: usize,
    cursor: usize,
    /// The element currently at the front, and how many peeks have skipped
    /// it. The cursor alone cannot guarantee Fairness: deletions shrink the
    /// window, and `cursor % window` with a changing modulus can avoid
    /// position 0 for more than `k` steps — so the minimum is force-returned
    /// once it has been skipped `k − 1` times, exactly the Section 2 bound.
    current_top: Option<(P, usize)>,
    skips: usize,
}

impl<P: Ord + Copy> RotatingKQueue<P> {
    /// Create a queue with relaxation factor `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "relaxation factor must be at least 1");
        Self {
            set: BTreeSet::new(),
            prio_of: Vec::new(),
            k,
            cursor: 0,
            current_top: None,
            skips: 0,
        }
    }

    /// The configured relaxation factor.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Exact minimum (rank-1 element), for tests and instrumentation.
    pub fn exact_min(&self) -> Option<(usize, P)> {
        self.set.first().map(|&(p, it)| (it, p))
    }

    fn ensure(&mut self, item: usize) {
        if item >= self.prio_of.len() {
            self.prio_of.resize(item + 1, None);
        }
    }

    /// Reset the fairness episode when the global minimum changes.
    fn sync_top(&mut self) {
        let top = self.set.first().copied();
        if top != self.current_top {
            self.current_top = top;
            self.skips = 0;
        }
    }
}

impl<P: Ord + Copy> RelaxedQueue<P> for RotatingKQueue<P> {
    fn insert(&mut self, item: usize, prio: P) {
        self.ensure(item);
        assert!(
            self.prio_of[item].is_none(),
            "item {item} is already in the queue"
        );
        self.prio_of[item] = Some(prio);
        let inserted = self.set.insert((prio, item));
        debug_assert!(inserted);
    }

    fn peek_relaxed(&mut self) -> Option<(usize, P)> {
        if self.set.is_empty() {
            return None;
        }
        self.sync_top();
        let window = self.k.min(self.set.len());
        let top = *self.set.first().expect("non-empty");
        let chosen = if self.skips >= self.k - 1 {
            top // Fairness override
        } else {
            let idx = self.cursor % window;
            *self.set.iter().nth(idx).expect("index within window")
        };
        self.cursor = self.cursor.wrapping_add(1);
        if chosen == top {
            self.skips = 0;
        } else {
            self.skips += 1;
        }
        Some((chosen.1, chosen.0))
    }

    fn delete(&mut self, item: usize) -> bool {
        let Some(Some(prio)) = self.prio_of.get(item).copied() else {
            return false;
        };
        let removed = self.set.remove(&(prio, item));
        debug_assert!(removed);
        self.prio_of[item] = None;
        true
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        let Some(Some(old)) = self.prio_of.get(item).copied() else {
            return false;
        };
        if prio >= old {
            return false;
        }
        self.set.remove(&(old, item));
        self.set.insert((prio, item));
        self.prio_of[item] = Some(prio);
        true
    }

    fn contains(&self, item: usize) -> bool {
        self.prio_of.get(item).is_some_and(|p| p.is_some())
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn relaxation_factor(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_over_top_k() {
        let mut q = RotatingKQueue::new(4);
        for i in 0..10usize {
            q.insert(i, i as u64);
        }
        let got: Vec<usize> = (0..8).map(|_| q.peek_relaxed().unwrap().0).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn rank_bound_holds_always() {
        let mut q = RotatingKQueue::new(5);
        for i in 0..100usize {
            q.insert(i, (i as u64 * 13) % 101);
        }
        for _ in 0..500 {
            let (item, prio) = q.peek_relaxed().unwrap();
            // Count strictly smaller elements: rank must be < k.
            let rank = q.set.iter().take_while(|&&e| e < (prio, item)).count();
            assert!(rank < 5, "rank {rank} violates RankBound");
        }
    }

    #[test]
    fn fairness_top_returned_within_k_calls() {
        let mut q = RotatingKQueue::new(7);
        for i in 0..50usize {
            q.insert(i, i as u64 + 100);
        }
        // Make item 49 the new global minimum mid-rotation.
        q.peek_relaxed();
        q.peek_relaxed();
        assert!(q.decrease_key(49, 0));
        let mut calls = 0;
        loop {
            calls += 1;
            let (item, _) = q.peek_relaxed().unwrap();
            if item == 49 {
                break;
            }
            assert!(calls <= 7, "fairness violated: top skipped {calls} times");
        }
    }

    #[test]
    fn window_shrinks_with_len() {
        let mut q = RotatingKQueue::new(10);
        q.insert(0, 5u64);
        q.insert(1, 6);
        // Window is min(k, len) = 2.
        assert_eq!(q.peek_relaxed(), Some((0, 5)));
        assert_eq!(q.peek_relaxed(), Some((1, 6)));
        assert_eq!(q.peek_relaxed(), Some((0, 5)));
    }

    #[test]
    fn delete_and_decrease() {
        let mut q = RotatingKQueue::new(3);
        q.insert(0, 10u64);
        q.insert(1, 20);
        q.insert(2, 30);
        assert!(RelaxedQueue::delete(&mut q, 1));
        assert!(!RelaxedQueue::delete(&mut q, 1));
        assert!(!q.contains(1));
        assert!(q.decrease_key(2, 1));
        assert_eq!(q.exact_min(), Some((2, 1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn k_equal_one_is_exact() {
        let mut q = RotatingKQueue::new(1);
        for (i, p) in [30u64, 10, 20].into_iter().enumerate() {
            q.insert(i, p);
        }
        let mut out = Vec::new();
        while let Some((it, _)) = q.peek_relaxed() {
            RelaxedQueue::delete(&mut q, it);
            out.push(it);
        }
        assert_eq!(out, vec![1, 2, 0]);
    }
}
