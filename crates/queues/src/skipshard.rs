//! Priority shard backends for the concurrent MultiQueue.
//!
//! [`ConcurrentMultiQueue`](crate::multiqueue::ConcurrentMultiQueue) is
//! `q` independent priority queues ("shards") composed by the choice-of-
//! two rule. PR 2 made the *FIFO* family's shards pluggable and
//! lock-free ([`SubFifo`](crate::fifo::SubFifo)); this module does the
//! same for the *priority* shards, which is harder: a priority shard
//! needs an **ordered** structure with `decrease_key`, not a queue.
//!
//! # [`SubPriority`] — the shard-backend trait
//!
//! The per-shard contract mirrors `SubFifo`: a protection token threaded
//! through every sub-call (an epoch guard for lock-free backends,
//! zero-sized for locked ones, borrowable from an amortized
//! [`PinSession`]), plus the operations the MultiQueue composes:
//! [`min_key`](SubPriority::min_key) (a **racy-safe peek** of the shard
//! minimum — the choice-of-two comparison), [`try_pop_min`] /
//! [`pop_min_wait`] (claim the minimum),
//! [`push_or_decrease`](SubPriority::push_or_decrease) (the merge-insert
//! the paper's SSSP needs), and `remove` / `decrease_key` /
//! `contains` / `priority_of` keyed lookups.
//!
//! # [`SkipShard`] — epoch-reclaimed lock-free skiplist (the default)
//!
//! A Harris-style skiplist over keys `(priority, item, stamp)` with the
//! deletion mark in the tag bit of each node's `next` pointers
//! (mark top-down, the level-0 mark is the claim that transfers
//! ownership), physical unlinking by every traversal, and reclamation
//! through [`crossbeam::epoch`]. On top of the list sits a lock-free
//! **item registry** (a growable segmented array of atomic node
//! pointers) giving `O(1)` item → node lookups, so `decrease_key` is
//! insert-new + claim-old with a registry CAS deciding races against
//! concurrent pops of the same item.
//!
//! The shard is entirely mutex-free: `min_key` walks the bottom level
//! skipping claimed nodes (node fields are immutable after publication,
//! so the racy peek is sound), and `pop_min` claims with a single CAS on
//! the head node's mark bit. A preempted thread mid-operation costs only
//! its own progress — the "practically wait-free" behaviour that
//! motivates the whole exercise (Alistarh, Censor-Hillel, Shavit).
//!
//! ## Conservation accounting
//!
//! `push_or_decrease` returns `true` when a **net-new element** entered
//! the shard, in the counting sense the runtime's quiescence detector
//! needs: over any quiescent interval, the number of `true` returns
//! equals the number of elements pops will deliver. Under a race between
//! a decrease and a concurrent pop of the same item, the old node may
//! already have been claimed by the popper; the decrease then inserts
//! its replacement and reports `true` (two pops will happen for the two
//! nodes — the stale one surfaces exactly like a stale SSSP distance,
//! which every caller of a *relaxed* queue must tolerate anyway).
//!
//! # [`MutexHeapSub`] — the locked baseline
//!
//! The pre-PR 3 shard verbatim: one `parking_lot::Mutex` around an
//! [`IndexedBinaryHeap`]. Kept for comparison (`mq_contention` sweeps
//! both backends) and for low-thread-count runs, where an uncontended
//! lock still beats an epoch pin.
//!
//! [`try_pop_min`]: SubPriority::try_pop_min
//! [`pop_min_wait`]: SubPriority::pop_min_wait

use crate::fifo::{PinSession, TokRef};
use crate::heap::IndexedBinaryHeap;
use crate::telemetry;
use crate::{DecreaseKey, PriorityQueue};
use crossbeam::epoch::{self, Atomic, Owned, Pointer, Shared};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tallest skiplist tower. Towers grow with branching factor 4
/// (`P(height > k) = 4^-k`, Fraser's fast configuration: shorter towers
/// mean fewer link/mark CASes per operation at slightly longer per-level
/// walks), so 8 levels cover shards of ~4⁷ ≈ 16k elements with a
/// constant-length top-level walk beyond that. Towers are inlined in the
/// node at this length: one allocation, one cache-friendly pointer hop
/// per level — no `Vec` indirection on the hot walk.
pub const MAX_HEIGHT: usize = 8;

/// The Harris deletion mark, stored in the tag bit of `next` pointers.
const MARK: usize = 1;

/// Result of a non-blocking delete-min attempt on a [`SubPriority`].
#[derive(Debug)]
pub enum TryPopMin<P> {
    /// Claimed the shard's minimum `(item, priority)`.
    Item((usize, P)),
    /// The shard was observed empty (a hint under concurrency).
    Empty,
    /// The shard is temporarily unavailable (a locked backend's mutex is
    /// held). Lock-free backends never report this.
    Contended,
}

/// One concurrent priority shard of a MultiQueue.
///
/// Items are dense `usize` ids, each present at most once per shard
/// (keyed placement hashes every id to one shard, so all operations on
/// an item meet in the same shard). Priorities are `Ord + Copy`; ties
/// break by item id, matching the workspace-wide deterministic order.
pub trait SubPriority<P: Ord + Copy>: Send + Sync {
    /// `true` when operations pin the epoch-reclamation scheme; lets the
    /// enclosing queue and the runtime know a [`PinSession`] is useful.
    const NEEDS_EPOCH: bool = false;

    /// Per-operation protection token (epoch guard or zero-sized); the
    /// composing queue creates **one** per MultiQueue operation and
    /// threads it through every peek and claim.
    type Token;

    /// Produce a token for one composed operation.
    fn token() -> Self::Token;

    /// Borrow the token from a live [`PinSession`] when possible.
    fn borrow_token(session: &PinSession) -> TokRef<'_, Self::Token>;

    /// An empty shard.
    fn new() -> Self;

    /// An empty shard pre-sized for items `0..universe`.
    fn with_universe(universe: usize) -> Self;

    /// Racy-safe peek of the shard minimum as `(priority, item)` —
    /// `None` when empty or (for locked backends) contended. The
    /// returned pair may be stale by the time the caller acts on it;
    /// that slack is part of the MultiQueue's relaxation budget.
    fn min_key(&self, tok: &Self::Token) -> Option<(P, usize)>;

    /// Non-blocking delete-min; never waits for another thread.
    fn try_pop_min(&self, tok: &Self::Token) -> TryPopMin<P>;

    /// One choice-of-two attempt over a pair of shards: compare the two
    /// minima, claim the smaller. The default composes the racy
    /// [`min_key`](Self::min_key) peeks with
    /// [`try_pop_min`](Self::try_pop_min) — no lock anywhere for
    /// lock-free backends; locked backends may override it to hold both
    /// locks across compare-and-pop (the pre-PR 3 MultiQueue protocol,
    /// which also guarantees the popped element *is* the peeked one).
    /// `second` is `None` when both samples hit the same shard. Callers
    /// must pass the pair in a globally consistent order (the enclosing
    /// queue uses ascending shard index) so lock-holding overrides
    /// cannot deadlock.
    fn try_pop_pair(first: &Self, second: Option<&Self>, tok: &Self::Token) -> TryPopMin<P> {
        let ka = first.min_key(tok);
        let kb = second.and_then(|s| s.min_key(tok));
        let pick = match (ka, kb) {
            (None, None) => return TryPopMin::Empty,
            (Some(_), None) => first,
            (None, Some(_)) => second.expect("a second minimum implies a second shard"),
            // min_key returns (prio, item): tuple order is the
            // workspace-wide (priority, id) tie-break.
            (Some(x), Some(y)) => {
                if x <= y {
                    first
                } else {
                    second.expect("a second minimum implies a second shard")
                }
            }
        };
        // The claimed element may differ from the peeked one if the
        // shard moved meanwhile — relaxation slack, not an error.
        pick.try_pop_min(tok)
    }

    /// Delete-min, waiting on a lock if the backend has one (lock-free
    /// backends are identical to [`try_pop_min`](Self::try_pop_min)).
    fn pop_min_wait(&self, tok: &Self::Token) -> Option<(usize, P)>;

    /// Insert `item`, or lower its priority if queued with a larger one.
    /// Returns `true` iff a net-new element entered the shard (the
    /// count the enclosing queue's `len` and the runtime's termination
    /// detector track).
    fn push_or_decrease(&self, item: usize, prio: P, tok: &Self::Token) -> bool;

    /// Unconditional insert (used by the duplicate-insertion ablation;
    /// the keyed lookups then track only one instance of the item).
    fn push(&self, item: usize, prio: P, tok: &Self::Token);

    /// Remove `item`, returning its priority. Under a race with a
    /// concurrent pop of the same item the popper wins and `None` is
    /// returned.
    fn remove(&self, item: usize, tok: &Self::Token) -> Option<P>;

    /// Strictly lower `item`'s priority to `prio`. Returns `false` if
    /// the item is absent or already at a priority `<= prio`.
    ///
    /// **Accounting caveat:** under a race with a concurrent pop of the
    /// same item, a lock-free backend may realize the decrease as
    /// remove-and-reinsert whose reinsertion is net-new in the counting
    /// sense — information this method's return value does not carry.
    /// Composers that maintain element counts (as
    /// `ConcurrentMultiQueue::len` and the runtime's termination
    /// detector do) must route updates through
    /// [`push_or_decrease`](Self::push_or_decrease), whose return value
    /// is the counting signal; `decrease_key` is for callers that only
    /// need the priority effect.
    fn decrease_key(&self, item: usize, prio: P, tok: &Self::Token) -> bool;

    /// `true` if `item` is currently queued.
    fn contains(&self, item: usize, tok: &Self::Token) -> bool;

    /// The queued priority of `item`, if present.
    fn priority_of(&self, item: usize, tok: &Self::Token) -> Option<P>;
}

// ---------------------------------------------------------------------
// Mutex + indexed-binary-heap baseline
// ---------------------------------------------------------------------

/// The locked baseline shard: a mutex around an [`IndexedBinaryHeap`]
/// (exactly the pre-PR 3 `ConcurrentMultiQueue` shard).
#[derive(Debug)]
pub struct MutexHeapSub<P> {
    heap: Mutex<IndexedBinaryHeap<P>>,
}

impl<P: Ord + Copy> Default for MutexHeapSub<P> {
    fn default() -> Self {
        Self {
            heap: Mutex::new(IndexedBinaryHeap::new()),
        }
    }
}

impl<P: Ord + Copy + Send> SubPriority<P> for MutexHeapSub<P> {
    type Token = ();

    fn token() {}

    fn borrow_token(_session: &PinSession) -> TokRef<'_, ()> {
        TokRef::Owned(())
    }

    fn new() -> Self {
        MutexHeapSub {
            heap: Mutex::new(IndexedBinaryHeap::new()),
        }
    }

    fn with_universe(universe: usize) -> Self {
        MutexHeapSub {
            heap: Mutex::new(IndexedBinaryHeap::with_universe(universe)),
        }
    }

    fn min_key(&self, _tok: &()) -> Option<(P, usize)> {
        self.heap.try_lock().and_then(|h| h.min_entry())
    }

    fn try_pop_min(&self, _tok: &()) -> TryPopMin<P> {
        match self.heap.try_lock() {
            None => TryPopMin::Contended,
            Some(mut h) => match h.pop() {
                Some(pair) => TryPopMin::Item(pair),
                None => TryPopMin::Empty,
            },
        }
    }

    fn pop_min_wait(&self, _tok: &()) -> Option<(usize, P)> {
        self.heap.lock().pop()
    }

    /// The pre-PR 3 two-choice protocol verbatim: try-lock both shards
    /// (callers pass them in ascending index order), compare the tops
    /// under the held locks, and pop the smaller one — the popped
    /// element is exactly the compared minimum.
    fn try_pop_pair(first: &Self, second: Option<&Self>, _tok: &()) -> TryPopMin<P> {
        let Some(ha) = first.heap.try_lock() else {
            return TryPopMin::Contended;
        };
        let hb = match second {
            Some(s) => match s.heap.try_lock() {
                Some(h) => Some(h),
                None => return TryPopMin::Contended,
            },
            None => None,
        };
        let ta = ha.peek();
        let tb = hb.as_ref().and_then(|h| h.peek());
        let use_first = match (ta, tb) {
            (None, None) => return TryPopMin::Empty,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((ia, pa)), Some((ib, pb))) => (pa, ia) <= (pb, ib),
        };
        let popped = if use_first {
            let mut ha = ha;
            drop(hb);
            ha.pop()
        } else {
            drop(ha);
            hb.expect("second lock held").pop()
        };
        TryPopMin::Item(popped.expect("peeked entry vanished under lock"))
    }

    fn push_or_decrease(&self, item: usize, prio: P, _tok: &()) -> bool {
        let mut heap = self.heap.lock();
        if heap.contains(item) {
            heap.decrease_key(item, prio);
            false
        } else {
            heap.push(item, prio);
            true
        }
    }

    fn push(&self, item: usize, prio: P, _tok: &()) {
        self.heap.lock().push(item, prio);
    }

    fn remove(&self, item: usize, _tok: &()) -> Option<P> {
        self.heap.lock().remove(item)
    }

    fn decrease_key(&self, item: usize, prio: P, _tok: &()) -> bool {
        self.heap.lock().decrease_key(item, prio)
    }

    fn contains(&self, item: usize, _tok: &()) -> bool {
        self.heap.lock().contains(item)
    }

    fn priority_of(&self, item: usize, _tok: &()) -> Option<P> {
        self.heap.lock().priority_of(item)
    }
}

// ---------------------------------------------------------------------
// Lock-free skiplist shard
// ---------------------------------------------------------------------

/// One skiplist node. Every payload field is written once, before the
/// publishing CAS, and never mutated — racy peeks only ever read
/// immutable data. Deletion state lives in the tag bits of `next`.
struct Node<P> {
    prio: P,
    item: usize,
    /// Unique per-shard insertion stamp: breaks `(prio, item)` ties
    /// between physical nodes when an item is re-inserted by
    /// `decrease_key`, so every key in the list is distinct.
    stamp: u64,
    height: usize,
    /// Owned strong reference (via `Arc::into_raw`) to the shard's node
    /// pool, taken by the recycling callback; null once taken (pooled
    /// nodes). Only mutated under exclusive ownership.
    pool: *const NodePool<P>,
    /// Inline tower; only `next[l]` for `l < height` is linked (reused
    /// nodes keep stale bits above their height — never read). Tag
    /// [`MARK`] on `next[l]` means this node is deleted at level `l`
    /// (level 0 = logically deleted, and winning that mark CAS claims
    /// the node).
    next: [Atomic<Node<P>>; MAX_HEIGHT],
}

impl<P> Drop for Node<P> {
    fn drop(&mut self) {
        let pool = std::mem::replace(&mut self.pool, std::ptr::null());
        if !pool.is_null() {
            // SAFETY: a non-null `pool` is an owned Arc reference.
            drop(unsafe { Arc::from_raw(pool) });
        }
    }
}

impl<P: Copy> Node<P> {
    #[inline]
    fn key(&self) -> (P, usize, u64) {
        (self.prio, self.item, self.stamp)
    }
}

/// splitmix64 — used to derive tower heights from insertion stamps.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Registry segment 0 size (log2). Segment `k` holds `1024 << k` slots,
/// so 40-odd spine entries cover any conceivable item universe while an
/// empty shard allocates nothing.
const REG_BASE_BITS: u32 = 10;
/// Spine length of the registry.
const REG_SPINE: usize = 44;

/// One registry segment: a fixed slab of item → node slots.
struct RegSeg<P> {
    slots: Box<[Atomic<Node<P>>]>,
}

/// Lock-free growable item → node index: a fixed spine of
/// doubling-sized segments, each installed at most once by CAS. Slots
/// hold the item's current live node (or null); all mutations are CAS,
/// and readers validate the node's claim mark, so a stale slot is
/// indistinguishable from an absent item.
struct Registry<P> {
    spine: Box<[Atomic<RegSeg<P>>]>,
}

/// `(segment index, offset, segment length)` of `item`'s slot.
#[inline]
fn reg_locate(item: usize) -> (usize, usize, usize) {
    let v = (item >> REG_BASE_BITS) + 1;
    let k = (usize::BITS - 1 - v.leading_zeros()) as usize;
    let start = ((1usize << k) - 1) << REG_BASE_BITS;
    (k, item - start, 1usize << (k as u32 + REG_BASE_BITS))
}

impl<P> Registry<P> {
    fn new() -> Self {
        Registry {
            spine: (0..REG_SPINE).map(|_| Atomic::null()).collect(),
        }
    }

    /// The slot for `item` if its segment exists.
    fn get<'g>(&self, item: usize, guard: &'g epoch::Guard) -> Option<&'g Atomic<Node<P>>> {
        let (k, off, _) = reg_locate(item);
        let seg = self.spine[k].load(Ordering::Acquire, guard);
        // SAFETY: segments are installed once and never freed before the
        // shard drops; the guard outlives this borrow.
        unsafe { seg.as_ref() }.map(|s| &s.slots[off])
    }

    /// The slot for `item`, installing its segment if missing.
    fn ensure<'g>(&self, item: usize, guard: &'g epoch::Guard) -> &'g Atomic<Node<P>> {
        let (k, off, len) = reg_locate(item);
        let entry = &self.spine[k];
        let mut seg = entry.load(Ordering::Acquire, guard);
        if seg.is_null() {
            let fresh = Owned::new(RegSeg {
                slots: (0..len).map(|_| Atomic::null()).collect(),
            });
            seg = match entry.compare_exchange(
                Shared::null(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(installed) => installed,
                // Another thread installed first; ours is dropped by the
                // returned error value.
                Err(lost) => lost.current,
            };
        }
        // SAFETY: non-null, installed once, freed only at shard drop.
        &unsafe { seg.deref() }.slots[off]
    }
}

impl<P> Drop for Registry<P> {
    fn drop(&mut self) {
        for entry in self.spine.iter() {
            let raw = entry.load_raw();
            if !raw.is_null() {
                // SAFETY: exclusive access at drop; installed via
                // `Owned::new`, freed exactly once here.
                drop(unsafe { Box::from_raw(raw) });
            }
        }
    }
}

/// Epoch-reclaimed lock-free skiplist priority shard — the default
/// [`SubPriority`] backend of
/// [`ConcurrentMultiQueue`](crate::multiqueue::ConcurrentMultiQueue).
///
/// # Examples
///
/// ```
/// use rsched_queues::skipshard::{SkipShard, SubPriority, TryPopMin};
///
/// let s: SkipShard<u64> = SubPriority::new();
/// let tok = <SkipShard<u64> as SubPriority<u64>>::token();
/// assert!(s.push_or_decrease(7, 70, &tok));
/// assert!(s.push_or_decrease(3, 30, &tok));
/// assert!(!s.push_or_decrease(7, 50, &tok), "decrease, not insert");
/// assert_eq!(s.min_key(&tok), Some((30, 3)));
/// match s.try_pop_min(&tok) {
///     TryPopMin::Item(got) => assert_eq!(got, (3, 30)),
///     _ => panic!("shard was non-empty"),
/// }
/// assert_eq!(s.priority_of(7, &tok), Some(50));
/// assert_eq!(s.remove(7, &tok), Some(50));
/// assert!(matches!(s.try_pop_min(&tok), TryPopMin::Empty));
/// ```
pub struct SkipShard<P> {
    /// Head tower: `head[l]` is the first node at level `l`. The head is
    /// conceptually a node with key `-∞` that is never marked.
    head: Box<[Atomic<Node<P>>]>,
    /// Source of unique insertion stamps (also seeds tower heights).
    stamps: AtomicU64,
    /// Tallest height any live-or-past node reached (monotone, capped at
    /// [`MAX_HEIGHT`]); searches start here instead of at the cap.
    level_hint: AtomicUsize,
    /// Free list of retired nodes, fed through the grace period.
    pool: Arc<NodePool<P>>,
    reg: Registry<P>,
}

/// Per-shard free list of retired skiplist nodes, following the
/// [`SegRingQueue`](crate::lockfree::SegRingQueue) segment-pool pattern:
/// a claimed-and-unlinked node reaches the pool only through an
/// **epoch-deferred callback** (so reuse carries the same ABA protection
/// outright destruction had). Nodes carry an owned `Arc` reference to
/// the pool so the callback stays sound even if it runs after the shard
/// dropped.
///
/// The free list itself is an **intrusive Treiber stack** threaded
/// through `next[0]` of the pooled nodes — one CAS per push/pop, no
/// mutex, no side allocation. The classic Treiber ABA hazard is absent
/// here by construction: pops run under the allocating operation's epoch
/// guard, and a node can only *re-enter* the stack after a full grace
/// period, which cannot elapse while any popper is still pinned.
struct NodePool<P> {
    free: Atomic<Node<P>>,
    /// Approximate pool population (bounds memory, not correctness).
    approx_len: AtomicUsize,
}

/// How many retired nodes a shard keeps for reuse.
const NODE_POOL_CAP: usize = 256;

// SAFETY: the raw pool back-pointers inside nodes are only dereferenced
// by the single owner of the containing allocation; the stack itself is
// atomics over nodes that are exclusively owned while pooled.
unsafe impl<P: Send> Send for NodePool<P> {}
unsafe impl<P: Send> Sync for NodePool<P> {}

impl<P> NodePool<P> {
    /// Pop a pooled node, transferring exclusive ownership to the
    /// caller. Must run under an epoch guard (see the type docs).
    fn take(&self, guard: &epoch::Guard) -> Option<Box<Node<P>>> {
        loop {
            let head = self.free.load(Ordering::Acquire, guard);
            // SAFETY: pooled nodes are only freed when the pool drops,
            // which cannot race a `take` (the shard holds the pool).
            let h = unsafe { head.as_ref() }?;
            let next = h.next[0].load(Ordering::Acquire, guard);
            if self
                .free
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire, guard)
                .is_ok()
            {
                self.approx_len.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: winning the CAS grants exclusive ownership of
                // the popped allocation.
                return Some(unsafe { Box::from_raw(head.as_raw() as *mut Node<P>) });
            }
        }
    }
}

impl<P> Drop for NodePool<P> {
    fn drop(&mut self) {
        // Exclusive access: free the pooled chain. Pooled nodes hold no
        // pool reference (taken at recycle time), so this cannot recurse.
        let mut raw = self.free.load_raw();
        while !raw.is_null() {
            // SAFETY: pooled nodes are exclusively owned by the stack.
            let boxed = unsafe { Box::from_raw(raw) };
            raw = boxed.next[0].load_raw();
        }
    }
}

/// Grace-period callback: hand a retired node back to its shard's pool
/// (or drop it if the pool is full).
///
/// # Safety
///
/// `ptr` must be a claimed, fully-unlinked `Node<P>` allocated via
/// `Box`, past its grace period, not recycled twice.
unsafe fn recycle_node<P>(ptr: *mut u8) {
    // SAFETY: per contract we own the node exclusively now.
    let mut node = unsafe { Box::from_raw(ptr.cast::<Node<P>>()) };
    let pool_ptr = std::mem::replace(&mut node.pool, std::ptr::null());
    if pool_ptr.is_null() {
        return;
    }
    // SAFETY: a non-null `pool` is an owned `Arc::into_raw` reference.
    let pool = unsafe { Arc::from_raw(pool_ptr) };
    if pool.approx_len.load(Ordering::Relaxed) >= NODE_POOL_CAP {
        return; // bounded: let the node drop
    }
    // Intrusive push: the node is exclusively ours until the CAS lands.
    let raw = Box::into_raw(node);
    let guard = epoch::pin();
    loop {
        let head = pool.free.load(Ordering::Acquire, &guard);
        // SAFETY: `raw` is unpublished; we own it.
        unsafe { (*raw).next[0].store(head, Ordering::Relaxed) };
        // SAFETY: `raw` came from `Box::into_raw` above.
        let new = unsafe { Shared::from_raw(raw) };
        if pool
            .free
            .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire, &guard)
            .is_ok()
        {
            pool.approx_len.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

impl<P: Ord + Copy> Default for SkipShard<P> {
    fn default() -> Self {
        Self {
            head: (0..MAX_HEIGHT).map(|_| Atomic::null()).collect(),
            stamps: AtomicU64::new(0),
            level_hint: AtomicUsize::new(1),
            pool: Arc::new(NodePool {
                free: Atomic::null(),
                approx_len: AtomicUsize::new(0),
            }),
            reg: Registry::new(),
        }
    }
}

impl<P: Ord + Copy> SkipShard<P> {
    /// The `next[level]` link of `pred`, where null means the head.
    #[inline]
    fn link<'g>(&'g self, pred: Shared<'g, Node<P>>, level: usize) -> &'g Atomic<Node<P>> {
        match unsafe { pred.as_ref() } {
            // SAFETY: non-null preds were loaded under the caller's
            // guard, which outlives this borrow.
            Some(p) => &p.next[level],
            None => &self.head[level],
        }
    }

    /// The level searches should start from: the shard's tallest-seen
    /// tower (never below `at_least`, the caller's own tower height).
    #[inline]
    fn search_top(&self, at_least: usize) -> usize {
        self.level_hint
            .load(Ordering::Relaxed)
            .max(at_least)
            .min(MAX_HEIGHT)
    }

    /// Search for `key` from level `top - 1` down: returns `preds[l]`
    /// (last node strictly before the key position; null = head) and
    /// `succs[l]` (first node at or after it) for every level below
    /// `top`, physically unlinking every marked node encountered along
    /// the way, top-down. The unlink at level 0 is where a deleted node
    /// leaves the structure for good, so that CAS winner hands it to the
    /// epoch collector.
    ///
    /// Pass `MAX_HEIGHT` to search (O(log n) needs the full tower);
    /// retiring a node whose key is near the head may pass the node's
    /// own height — the walk below its levels is short by construction.
    #[allow(clippy::type_complexity)]
    fn find<'g>(
        &'g self,
        key: (P, usize, u64),
        top: usize,
        guard: &'g epoch::Guard,
    ) -> (
        [Shared<'g, Node<P>>; MAX_HEIGHT],
        [Shared<'g, Node<P>>; MAX_HEIGHT],
    ) {
        'retry: loop {
            let mut preds = [Shared::null(); MAX_HEIGHT];
            let mut succs = [Shared::null(); MAX_HEIGHT];
            let mut pred: Shared<'g, Node<P>> = Shared::null();
            for level in (0..top).rev() {
                let mut cur = self.link(pred, level).load(Ordering::Acquire, guard);
                if cur.tag() == MARK {
                    // `pred` itself got deleted under us; its links are
                    // frozen, so restart from the head.
                    continue 'retry;
                }
                // SAFETY: loaded under `guard` from a live link.
                while let Some(c) = unsafe { cur.as_ref() } {
                    let succ = c.next[level].load(Ordering::Acquire, guard);
                    if succ.tag() == MARK {
                        // `cur` is deleted at this level: unlink it.
                        match self.link(pred, level).compare_exchange(
                            cur,
                            succ.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        ) {
                            Ok(_) => {
                                if level == 0 {
                                    // `cur` just became unreachable at
                                    // the bottom level — the unique
                                    // point where it leaves the list.
                                    // SAFETY: unlinked; recycled (or
                                    // freed) only after the grace
                                    // period.
                                    unsafe {
                                        guard.defer_with_raw(
                                            cur.as_raw() as *mut u8,
                                            recycle_node::<P>,
                                        )
                                    };
                                }
                                cur = succ.with_tag(0);
                            }
                            Err(_) => continue 'retry,
                        }
                        continue;
                    }
                    if c.key() < key {
                        pred = cur;
                        cur = succ;
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = cur;
            }
            return (preds, succs);
        }
    }

    /// Allocate and publish a node for `(item, prio)`, linking all its
    /// levels. Returns the published node.
    ///
    /// If a concurrent claim deletes the node while its upper levels are
    /// still being linked, the linking stops and a cleanup search runs
    /// *before this function returns* — under the operation's guard —
    /// so the node is unreachable at every level by the time the epoch
    /// can advance past this thread (the invariant reclamation needs).
    fn insert_node<'g>(
        &'g self,
        item: usize,
        prio: P,
        guard: &'g epoch::Guard,
    ) -> Shared<'g, Node<P>> {
        let stamp = self.stamps.fetch_add(1, Ordering::Relaxed);
        // Branching factor 4: P(height > k) = 4^-k.
        let height =
            ((splitmix64(stamp ^ (item as u64).rotate_left(32)).trailing_ones() as usize) / 2 + 1)
                .min(MAX_HEIGHT);
        if height > self.level_hint.load(Ordering::Relaxed) {
            self.level_hint.fetch_max(height, Ordering::Relaxed);
        }
        let key = (prio, item, stamp);
        // Reuse a retired node when the pool has one and its lock is
        // free; allocate otherwise (never blocks).
        let mut boxed = match self.pool.take(guard) {
            Some(mut b) => {
                b.prio = prio;
                b.item = item;
                b.stamp = stamp;
                b.height = height;
                // Links below `height` are overwritten before the
                // publishing CAS; stale bits above are never read.
                b
            }
            None => Box::new(Node {
                prio,
                item,
                stamp,
                height,
                pool: std::ptr::null(),
                next: std::array::from_fn(|_| Atomic::null()),
            }),
        };
        boxed.pool = Arc::into_raw(Arc::clone(&self.pool));
        // SAFETY: `Box::into_raw` hands the allocation to the list.
        let node: Shared<'g, Node<P>> = unsafe { Shared::from_raw(Box::into_raw(boxed)) };
        // SAFETY: freshly allocated under `guard`; not yet published.
        let n = unsafe { node.deref() };
        let top = self.search_top(height);
        // Publish at level 0 (the level that defines membership).
        let mut lists = loop {
            let (preds, succs) = self.find(key, top, guard);
            for (link, &succ) in n.next.iter().zip(succs.iter()).take(height) {
                link.store(succ, Ordering::Relaxed);
            }
            match self.link(preds[0], 0).compare_exchange(
                succs[0],
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => break (preds, succs),
                Err(_) => continue,
            }
        };
        // Link the upper levels; abandon (and clean up) if deleted.
        for l in 1..height {
            loop {
                if n.next[0].load(Ordering::Acquire, guard).tag() == MARK {
                    // Already claimed: make sure every level we linked is
                    // unlinked before our guard drops.
                    self.find(key, top, guard);
                    return node;
                }
                let cur_l = n.next[l].load(Ordering::Acquire, guard);
                if cur_l.tag() == MARK {
                    self.find(key, top, guard);
                    return node;
                }
                let (preds, succs) = lists;
                if cur_l.as_raw() != succs[l].as_raw()
                    && n.next[l]
                        .compare_exchange(
                            cur_l,
                            succs[l],
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_err()
                {
                    // Raced with a marker; re-check the deletion flag.
                    continue;
                }
                if self
                    .link(preds[l], l)
                    .compare_exchange(succs[l], node, Ordering::AcqRel, Ordering::Acquire, guard)
                    .is_ok()
                {
                    break;
                }
                lists = self.find(key, top, guard);
            }
        }
        if n.next[0].load(Ordering::Acquire, guard).tag() == MARK {
            self.find(key, top, guard);
        }
        node
    }

    /// Claim `node` for deletion: mark its upper levels top-down, then
    /// race for the level-0 mark. Returns `true` iff this call won the
    /// level-0 mark (and therefore owns the node's removal). Once the
    /// upper marks are set the node *will* be deleted — by whichever
    /// contender wins the bottom level.
    fn claim(&self, node: &Node<P>, guard: &epoch::Guard) -> bool {
        for l in (1..node.height).rev() {
            loop {
                let nl = node.next[l].load(Ordering::Acquire, guard);
                if nl.tag() == MARK
                    || node.next[l]
                        .compare_exchange(
                            nl,
                            nl.with_tag(MARK),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_ok()
                {
                    break;
                }
            }
        }
        loop {
            let n0 = node.next[0].load(Ordering::Acquire, guard);
            if n0.tag() == MARK {
                return false;
            }
            if node.next[0]
                .compare_exchange(
                    n0,
                    n0.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Post-claim bookkeeping for a node this thread owns: drop the
    /// item's registry entry if it still points here, then physically
    /// unlink at every level. Must run under the claiming operation's
    /// guard (see [`insert_node`](Self::insert_node) for why).
    fn retire(&self, node: &Node<P>, ptr: Shared<'_, Node<P>>, top: usize, guard: &epoch::Guard) {
        if let Some(slot) = self.reg.get(node.item, guard) {
            let _ = slot.compare_exchange(
                ptr.with_tag(0),
                Shared::null(),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            );
        }
        self.find(node.key(), top, guard);
    }

    /// If `node` (just registered at `slot`) was claimed by a concurrent
    /// pop before the registration landed, clear the registration so the
    /// slot never outlives the node. Runs under the inserting
    /// operation's guard, which is what makes the pattern sound: the
    /// node cannot be reclaimed until this guard drops, and by then the
    /// slot no longer points at it.
    fn deregister_if_claimed(
        &self,
        slot: &Atomic<Node<P>>,
        node: Shared<'_, Node<P>>,
        guard: &epoch::Guard,
    ) {
        // SAFETY: `node` was loaded/created under `guard`.
        let n = unsafe { node.deref() };
        if n.next[0].load(Ordering::Acquire, guard).tag() == MARK {
            let _ = slot.compare_exchange(
                node,
                Shared::null(),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            );
        }
    }

    /// Undo a just-inserted node after losing a registry race: claim and
    /// unlink it. Returns `true` if a concurrent pop consumed the node
    /// first (i.e. it *did* count as an element).
    fn unpublish(&self, node: Shared<'_, Node<P>>, guard: &epoch::Guard) -> bool {
        // SAFETY: created under `guard` by the caller.
        let n = unsafe { node.deref() };
        if self.claim(n, guard) {
            self.find(n.key(), self.search_top(n.height), guard);
            false
        } else {
            true
        }
    }
}

impl<P: Ord + Copy + Send + Sync> SubPriority<P> for SkipShard<P> {
    const NEEDS_EPOCH: bool = true;

    type Token = epoch::Guard;

    fn token() -> epoch::Guard {
        epoch::pin()
    }

    fn borrow_token(session: &PinSession) -> TokRef<'_, epoch::Guard> {
        match session.guard() {
            Some(g) => TokRef::Borrowed(g),
            None => TokRef::Owned(epoch::pin()),
        }
    }

    fn new() -> Self {
        Self::default()
    }

    fn with_universe(universe: usize) -> Self {
        let shard = Self::default();
        if universe > 0 {
            let guard = epoch::pin();
            // Install every registry segment covering the universe (one
            // `ensure` per doubling segment), so no allocation happens
            // on the hot insert path.
            let mut start = 0usize;
            while start < universe {
                shard.reg.ensure(start, &guard);
                let (_, _, len) = reg_locate(start);
                start += len;
            }
        }
        shard
    }

    fn min_key(&self, tok: &epoch::Guard) -> Option<(P, usize)> {
        let mut cur = self.head[0].load(Ordering::Acquire, tok);
        loop {
            // SAFETY: loaded under `tok` from a live link; node payload
            // fields are immutable, so this racy walk reads stable data.
            let c = unsafe { cur.with_tag(0).as_ref() }?;
            let succ = c.next[0].load(Ordering::Acquire, tok);
            if succ.tag() != MARK {
                return Some((c.prio, c.item));
            }
            cur = succ;
        }
    }

    fn try_pop_min(&self, tok: &epoch::Guard) -> TryPopMin<P> {
        // The walk never advances past an *unmarked* node (it claims
        // it instead), so the predecessor is always the head.
        let mut retries = 0u64;
        loop {
            let cur = self.head[0].load(Ordering::Acquire, tok);
            // SAFETY: loaded under `tok` from a live link.
            let Some(c) = (unsafe { cur.as_ref() }) else {
                return TryPopMin::Empty;
            };
            let succ = c.next[0].load(Ordering::Acquire, tok);
            if succ.tag() == MARK {
                // Already claimed: help unlink, then re-read the head.
                if self.head[0]
                    .compare_exchange(
                        cur,
                        succ.with_tag(0),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        tok,
                    )
                    .is_ok()
                {
                    // SAFETY: unlinked at level 0 (upper levels were
                    // marked before the claim and are unlinked by the
                    // claimer's retire pass); recycled after the grace
                    // period.
                    unsafe { tok.defer_with_raw(cur.as_raw() as *mut u8, recycle_node::<P>) };
                }
                retries += 1;
                continue;
            }
            if self.claim(c, tok) {
                let got = (c.item, c.prio);
                self.retire(c, cur, c.height, tok);
                telemetry::record(telemetry::OpHist::Retry, retries);
                return TryPopMin::Item(got);
            }
            // Lost the claim; re-read and let the help path advance.
            retries += 1;
        }
    }

    fn pop_min_wait(&self, tok: &epoch::Guard) -> Option<(usize, P)> {
        match self.try_pop_min(tok) {
            TryPopMin::Item(pair) => Some(pair),
            _ => None,
        }
    }

    fn push_or_decrease(&self, item: usize, prio: P, tok: &epoch::Guard) -> bool {
        let slot = self.reg.ensure(item, tok);
        // One probe for the registry walk itself, plus one per slot
        // re-examination when the CAS loop goes around.
        let mut probes = 1u64;
        loop {
            let old = slot.load(Ordering::Acquire, tok);
            // SAFETY: registry entries are cleared before their node can
            // be reclaimed; `tok` protects this dereference.
            let live = unsafe { old.as_ref() }
                .filter(|o| o.next[0].load(Ordering::Acquire, tok).tag() != MARK);
            if let Some(o) = live {
                if o.prio <= prio {
                    telemetry::count(telemetry::OpCount::RegistryProbe, probes);
                    return false;
                }
            }
            let node = self.insert_node(item, prio, tok);
            match slot.compare_exchange(old, node, Ordering::AcqRel, Ordering::Acquire, tok) {
                Ok(_) => {
                    let verdict = match live {
                        // Replace-in-place: retire the old node.
                        Some(o) if self.claim(o, tok) => {
                            self.find(o.key(), self.search_top(o.height), tok);
                            false
                        }
                        // A popper claimed the old node first (it still
                        // surfaces as a stale pop), or the slot was
                        // absent/dangling: our insert is net-new.
                        _ => true,
                    };
                    self.deregister_if_claimed(slot, node, tok);
                    telemetry::count(telemetry::OpCount::RegistryProbe, probes);
                    return verdict;
                }
                Err(_) => {
                    // The slot moved under us (concurrent decrease or
                    // pop): withdraw our node and re-evaluate, unless a
                    // popper already consumed it — then it counted.
                    if self.unpublish(node, tok) {
                        telemetry::count(telemetry::OpCount::RegistryProbe, probes);
                        return true;
                    }
                    probes += 1;
                }
            }
        }
    }

    fn push(&self, item: usize, prio: P, tok: &epoch::Guard) {
        let slot = self.reg.ensure(item, tok);
        let node = self.insert_node(item, prio, tok);
        // Best-effort registration so keyed lookups see one instance.
        let _ = slot.compare_exchange(
            Shared::null(),
            node,
            Ordering::AcqRel,
            Ordering::Acquire,
            tok,
        );
        self.deregister_if_claimed(slot, node, tok);
    }

    fn remove(&self, item: usize, tok: &epoch::Guard) -> Option<P> {
        let slot = self.reg.get(item, tok)?;
        loop {
            let old = slot.load(Ordering::Acquire, tok);
            // SAFETY: see `push_or_decrease`.
            let o = (unsafe { old.as_ref() })?;
            if o.next[0].load(Ordering::Acquire, tok).tag() == MARK {
                // Dangling entry for a claimed node: clear and report
                // the item absent (the popper owns it).
                let _ = slot.compare_exchange(
                    old,
                    Shared::null(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    tok,
                );
                return None;
            }
            if self.claim(o, tok) {
                let prio = o.prio;
                self.retire(o, old, self.search_top(o.height), tok);
                return Some(prio);
            }
            // Lost to a concurrent pop or decrease; re-read the slot.
            if slot.load(Ordering::Acquire, tok).as_raw() == old.as_raw() {
                return None;
            }
        }
    }

    // Check-then-act by design: if a pop claims the item between the
    // check and the update, the update degenerates to push_or_decrease
    // semantics (re-insertion, popped later). See the trait's
    // accounting caveat — counting callers use push_or_decrease.
    fn decrease_key(&self, item: usize, prio: P, tok: &epoch::Guard) -> bool {
        let Some(slot) = self.reg.get(item, tok) else {
            return false;
        };
        let old = slot.load(Ordering::Acquire, tok);
        // SAFETY: see `push_or_decrease`.
        let Some(o) = (unsafe { old.as_ref() }) else {
            return false;
        };
        if o.next[0].load(Ordering::Acquire, tok).tag() == MARK || o.prio <= prio {
            return false;
        }
        self.push_or_decrease(item, prio, tok);
        true
    }

    fn contains(&self, item: usize, tok: &epoch::Guard) -> bool {
        self.priority_of(item, tok).is_some()
    }

    fn priority_of(&self, item: usize, tok: &epoch::Guard) -> Option<P> {
        let slot = self.reg.get(item, tok)?;
        let node = slot.load(Ordering::Acquire, tok);
        // SAFETY: see `push_or_decrease`.
        unsafe { node.as_ref() }
            .filter(|n| n.next[0].load(Ordering::Acquire, tok).tag() != MARK)
            .map(|n| n.prio)
    }
}

impl<P> Drop for SkipShard<P> {
    fn drop(&mut self) {
        // Exclusive access: free every node still linked at level 0
        // (claimed-but-not-unlinked nodes included — they are reachable
        // and were never handed to the collector). Unlinked nodes are
        // owned by the epoch collector and freed there.
        // Strip the mark tag before the null check: a claimed last node
        // stores "marked null" in its level-0 link.
        let mut raw = (self.head[0].load_raw() as usize & !MARK) as *mut Node<P>;
        while !raw.is_null() {
            // SAFETY: level-0-reachable nodes are owned by the shard at
            // drop time; each is freed exactly once.
            let boxed = unsafe { Box::from_raw(raw) };
            raw = (boxed.next[0].load_raw() as usize & !MARK) as *mut Node<P>;
        }
    }
}

impl<P: Ord + Copy> std::fmt::Debug for SkipShard<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipShard").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;
    use std::sync::Arc;

    /// Iteration multiplier for the heavy tests; `RSCHED_STRESS=1` (or a
    /// number) raises it in the CI stress job.
    fn stress_mult() -> usize {
        match std::env::var("RSCHED_STRESS").as_deref() {
            Ok("0") | Err(_) => 1,
            Ok(v) => v.parse::<usize>().unwrap_or(1).clamp(1, 64) * 4,
        }
    }

    fn pop_all<P: Ord + Copy + Send + Sync>(s: &SkipShard<P>) -> Vec<(usize, P)> {
        let tok = SkipShard::<P>::token();
        let mut out = Vec::new();
        while let Some(pair) = s.pop_min_wait(&tok) {
            out.push(pair);
        }
        out
    }

    #[test]
    fn sequential_pops_come_out_sorted() {
        let s: SkipShard<u64> = SubPriority::new();
        let tok = SkipShard::<u64>::token();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 2_000usize;
        let mut want: Vec<(u64, usize)> = (0..n).map(|i| (rng.gen_range(0..50_000), i)).collect();
        for &(p, i) in &want {
            assert!(s.push_or_decrease(i, p, &tok));
        }
        want.sort_unstable();
        let got = pop_all(&s);
        assert_eq!(got.len(), n);
        let got_keys: Vec<(u64, usize)> = got.iter().map(|&(i, p)| (p, i)).collect();
        assert_eq!(
            got_keys, want,
            "pop_min must deliver ascending (prio, item)"
        );
    }

    #[test]
    fn min_key_tracks_the_minimum() {
        let s: SkipShard<u64> = SubPriority::new();
        let tok = SkipShard::<u64>::token();
        assert_eq!(s.min_key(&tok), None);
        s.push_or_decrease(5, 50, &tok);
        assert_eq!(s.min_key(&tok), Some((50, 5)));
        s.push_or_decrease(9, 10, &tok);
        assert_eq!(s.min_key(&tok), Some((10, 9)));
        s.push_or_decrease(5, 1, &tok); // decrease overtakes
        assert_eq!(s.min_key(&tok), Some((1, 5)));
        assert!(matches!(s.try_pop_min(&tok), TryPopMin::Item((5, 1))));
        assert_eq!(s.min_key(&tok), Some((10, 9)));
    }

    #[test]
    fn decrease_remove_and_lookups_sequential() {
        let s: SkipShard<u64> = SubPriority::new();
        let tok = SkipShard::<u64>::token();
        assert!(s.push_or_decrease(7, 100, &tok));
        assert!(!s.push_or_decrease(7, 50, &tok), "decrease, not insert");
        assert!(!s.push_or_decrease(7, 80, &tok), "no-op update");
        assert_eq!(s.priority_of(7, &tok), Some(50));
        assert!(s.contains(7, &tok));
        assert!(!s.decrease_key(7, 60, &tok), "not strictly smaller");
        assert!(s.decrease_key(7, 5, &tok));
        assert_eq!(s.remove(7, &tok), Some(5));
        assert_eq!(s.remove(7, &tok), None);
        assert!(!s.contains(7, &tok));
        assert_eq!(s.priority_of(7, &tok), None);
        assert!(matches!(s.try_pop_min(&tok), TryPopMin::Empty));
        // Re-insert after remove works (fresh node, fresh stamp).
        assert!(s.push_or_decrease(7, 9, &tok));
        assert_eq!(pop_all(&s), vec![(7, 9)]);
    }

    #[test]
    fn registry_handles_sparse_and_large_items() {
        let s: SkipShard<u64> = SubPriority::new();
        let tok = SkipShard::<u64>::token();
        for &item in &[0usize, 1023, 1024, 3071, 3072, 1 << 20, (1 << 22) + 13] {
            assert!(s.push_or_decrease(item, item as u64, &tok));
            assert_eq!(s.priority_of(item, &tok), Some(item as u64));
        }
        assert_eq!(pop_all(&s).len(), 7);
    }

    #[test]
    fn reg_locate_is_a_partition() {
        // Every item maps to exactly one in-bounds slot, contiguously.
        let mut prev = (0usize, usize::MAX, 0usize);
        for item in 0..200_000usize {
            let (k, off, len) = reg_locate(item);
            assert!(k < REG_SPINE);
            assert!(off < len);
            if k == prev.0 && prev.1 != usize::MAX {
                assert_eq!(off, prev.1 + 1, "gap within segment at {item}");
            } else if item > 0 {
                assert_eq!(off, 0, "segment {k} does not start at offset 0");
            }
            prev = (k, off, len);
        }
    }

    #[test]
    fn concurrent_conservation_storm() {
        let threads = 8;
        let per = 4_000 * stress_mult();
        let s: Arc<SkipShard<u64>> = Arc::new(SubPriority::new());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                    let mut got = Vec::new();
                    let tok = SkipShard::<u64>::token();
                    for i in 0..per {
                        let item = t * per + i;
                        assert!(s.push_or_decrease(item, rng.gen_range(0..1_000_000), &tok));
                        if i % 3 == 0 {
                            if let TryPopMin::Item((it, _)) = s.try_pop_min(&tok) {
                                got.push(it);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for it in h.join().unwrap() {
                assert!(seen.insert(it), "duplicate pop of {it}");
            }
        }
        for (it, _) in pop_all(&s) {
            assert!(seen.insert(it), "duplicate pop of {it}");
        }
        assert_eq!(seen.len(), threads * per, "elements lost");
    }

    #[test]
    fn concurrent_decrease_vs_pop_storm_conserves_count() {
        // Hammer a small item universe with mixed push_or_decrease /
        // remove / pop from many threads. Conservation here is the
        // counting invariant: (# of `true` push returns) == (# of
        // successful pops) + (# of successful removes) + (leftover).
        let threads = 8;
        let rounds = 3_000 * stress_mult();
        let universe = 64usize;
        let s: Arc<SkipShard<u64>> = Arc::new(SubPriority::new());
        let totals: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let s = Arc::clone(&s);
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(0xDEC0 + t as u64);
                        let (mut ins, mut pops, mut rems) = (0u64, 0u64, 0u64);
                        let tok = SkipShard::<u64>::token();
                        for _ in 0..rounds {
                            let item = rng.gen_range(0..universe);
                            match rng.gen_range(0..4u32) {
                                0 | 1 => {
                                    if s.push_or_decrease(item, rng.gen_range(0..1_000_000), &tok) {
                                        ins += 1;
                                    }
                                }
                                2 => {
                                    if let TryPopMin::Item(_) = s.try_pop_min(&tok) {
                                        pops += 1;
                                    }
                                }
                                _ => {
                                    if s.remove(item, &tok).is_some() {
                                        rems += 1;
                                    }
                                }
                            }
                        }
                        (ins, pops, rems)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let (ins, pops, rems) = totals
            .iter()
            .fold((0, 0, 0), |(a, b, c), &(x, y, z)| (a + x, b + y, c + z));
        let leftover = pop_all(&s).len() as u64;
        assert_eq!(
            ins,
            pops + rems + leftover,
            "conservation violated: {ins} in vs {pops} popped + {rems} removed + {leftover} left"
        );
    }

    #[test]
    fn racy_min_key_is_memory_safe_and_plausible() {
        // Peeks racing pops/inserts must never crash or return a
        // priority that was never inserted.
        let s: Arc<SkipShard<u64>> = Arc::new(SubPriority::new());
        let n = 20_000 * stress_mult() as u64;
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let s2 = Arc::clone(&s);
            scope.spawn(move || {
                let tok = SkipShard::<u64>::token();
                for i in 0..n {
                    s2.push_or_decrease(i as usize, 2 * i, &tok);
                }
            });
            let s3 = Arc::clone(&s);
            let done2 = Arc::clone(&done);
            scope.spawn(move || {
                let tok = SkipShard::<u64>::token();
                while !done2.load(Ordering::Acquire) {
                    if let Some((p, it)) = s3.min_key(&tok) {
                        assert_eq!(p, 2 * it as u64, "peeked a pair never inserted");
                        assert!((it as u64) < n);
                    }
                }
            });
            let tok = SkipShard::<u64>::token();
            let mut got = 0u64;
            while got < n {
                if let TryPopMin::Item(_) = s.try_pop_min(&tok) {
                    got += 1;
                }
            }
            done.store(true, Ordering::Release);
        });
        let tok = SkipShard::<u64>::token();
        assert!(matches!(s.try_pop_min(&tok), TryPopMin::Empty));
    }

    #[test]
    fn drop_frees_remaining_nodes_without_leak_or_double_free() {
        // Fill, pop a little, drop; then exercise the claimed-but-
        // unlinked path by removing under a held token and dropping.
        for popped in [0usize, 10, 700] {
            let s: SkipShard<u64> = SubPriority::new();
            let tok = SkipShard::<u64>::token();
            for i in 0..900usize {
                s.push_or_decrease(i, i as u64, &tok);
            }
            for _ in 0..popped {
                assert!(matches!(s.try_pop_min(&tok), TryPopMin::Item(_)));
            }
            drop(tok);
            drop(s); // miri/asan would flag leaks or double frees here
        }
    }
}
