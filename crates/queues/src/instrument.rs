//! Empirical rank / fairness instrumentation.
//!
//! [`RankTracker`] wraps any [`RelaxedQueue`] and maintains a *shadow* exact
//! ordered set of the queue's contents. Every `peek_relaxed` is measured
//! against the shadow:
//!
//! * the **rank** of the returned element (1 = exact minimum) — the paper's
//!   `rank(t)`, whose bound `rank(t) ≤ k` is the RankBound property;
//! * the **inversion count** `inv(u)` of every element `u` that becomes the
//!   global minimum: the number of peeks between `u` becoming the minimum
//!   and `u` being returned — whose bound `inv(u) ≤ k − 1` is the Fairness
//!   property.
//!
//! The tests in this crate use the tracker to *prove-by-execution* that the
//! deterministic schedulers never violate the bounds and to measure the
//! empirical distributions for the randomized ones (MultiQueue, SprayList),
//! reproducing the "relaxation factor is proportional to the number of
//! queues" observation used in Figure 2 of the paper.
//!
//! For the relaxed *FIFO* family there are two measurement modes:
//! [`FifoRankTracker`](crate::fifo::FifoRankTracker) is the exact
//! sequential shadow, and [`ConcurrentRankEstimator`] is the
//! timestamp-based estimator that measures d-CBO and friends **under real
//! thread contention** (the PPoPP 2025 d-CBO methodology).

use crate::fifo::FifoRankStats;
use crate::RelaxedQueue;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated rank / inversion statistics.
#[derive(Clone, Debug, Default)]
pub struct RankStats {
    /// Number of successful `peek_relaxed` calls measured.
    pub peeks: u64,
    /// Largest observed rank (1-based).
    pub max_rank: usize,
    /// Sum of observed ranks (for the mean).
    pub sum_rank: u128,
    /// `rank_hist[r]` = number of peeks that returned the rank-`r+1`
    /// element; ranks beyond the histogram length land in the last bucket.
    pub rank_hist: Vec<u64>,
    /// Number of completed top-element episodes (element became the minimum
    /// and was subsequently returned or removed).
    pub tops: u64,
    /// Largest observed inversion count.
    pub max_inv: u64,
    /// Sum of inversion counts (for the mean).
    pub sum_inv: u128,
}

impl RankStats {
    const HIST_BUCKETS: usize = 1024;

    /// Mean rank of returned elements (1.0 = always exact).
    pub fn mean_rank(&self) -> f64 {
        if self.peeks == 0 {
            0.0
        } else {
            self.sum_rank as f64 / self.peeks as f64
        }
    }

    /// Mean inversion count over completed top episodes.
    pub fn mean_inv(&self) -> f64 {
        if self.tops == 0 {
            0.0
        } else {
            self.sum_inv as f64 / self.tops as f64
        }
    }

    /// Fraction of peeks that returned the exact minimum.
    pub fn exact_fraction(&self) -> f64 {
        if self.peeks == 0 {
            return 0.0;
        }
        let exact = self.rank_hist.first().copied().unwrap_or(0);
        exact as f64 / self.peeks as f64
    }

    /// The `q`-quantile (e.g. `0.99`) of the rank distribution.
    pub fn rank_quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q));
        let target = (self.peeks as f64 * q).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.rank_hist.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i + 1;
            }
        }
        self.max_rank
    }

    fn record_rank(&mut self, rank: usize) {
        if self.rank_hist.is_empty() {
            self.rank_hist = vec![0; Self::HIST_BUCKETS];
        }
        self.peeks += 1;
        self.max_rank = self.max_rank.max(rank);
        self.sum_rank += rank as u128;
        let bucket = (rank - 1).min(Self::HIST_BUCKETS - 1);
        self.rank_hist[bucket] += 1;
    }

    fn record_inv(&mut self, inv: u64) {
        self.tops += 1;
        self.max_inv = self.max_inv.max(inv);
        self.sum_inv += inv as u128;
    }
}

/// A [`RelaxedQueue`] decorator that measures empirical rank and fairness.
///
/// # Examples
///
/// ```
/// use rsched_queues::{RankTracker, SimMultiQueue, RelaxedQueue};
///
/// let mut q = RankTracker::new(SimMultiQueue::new(4, 1));
/// for i in 0..100usize {
///     q.insert(i, i as u64);
/// }
/// while q.pop_relaxed().is_some() {}
/// let stats = q.stats();
/// assert_eq!(stats.peeks, 100);
/// assert!(stats.mean_rank() >= 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct RankTracker<P, Q> {
    inner: Q,
    shadow: BTreeSet<(P, usize)>,
    prio_of: Vec<Option<P>>,
    stats: RankStats,
    /// The element currently believed to be the global minimum, plus the
    /// number of peeks it has been skipped for.
    current_top: Option<(P, usize)>,
    skips: u64,
}

impl<P: Ord + Copy, Q: RelaxedQueue<P>> RankTracker<P, Q> {
    /// Wrap `inner`; the tracker starts empty, so wrap before inserting.
    pub fn new(inner: Q) -> Self {
        assert!(inner.is_empty(), "wrap the queue before filling it");
        Self {
            inner,
            shadow: BTreeSet::new(),
            prio_of: Vec::new(),
            stats: RankStats::default(),
            current_top: None,
            skips: 0,
        }
    }

    /// The collected statistics so far.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Consume the tracker, returning the inner queue and the statistics.
    pub fn into_parts(self) -> (Q, RankStats) {
        (self.inner, self.stats)
    }

    fn ensure(&mut self, item: usize) {
        if item >= self.prio_of.len() {
            self.prio_of.resize(item + 1, None);
        }
    }

    /// Refresh fairness bookkeeping after any structural change.
    fn sync_top(&mut self) {
        let top = self.shadow.first().copied();
        if top != self.current_top {
            // A new element became the global minimum; its episode starts now.
            self.current_top = top;
            self.skips = 0;
        }
    }
}

impl<P: Ord + Copy, Q: RelaxedQueue<P>> RelaxedQueue<P> for RankTracker<P, Q> {
    fn insert(&mut self, item: usize, prio: P) {
        self.ensure(item);
        debug_assert!(self.prio_of[item].is_none());
        self.prio_of[item] = Some(prio);
        self.shadow.insert((prio, item));
        self.inner.insert(item, prio);
        self.sync_top();
    }

    fn peek_relaxed(&mut self) -> Option<(usize, P)> {
        let got = self.inner.peek_relaxed()?;
        let (item, prio) = got;
        let rank = self
            .shadow
            .iter()
            .position(|&e| e == (prio, item))
            .expect("inner queue returned an element the shadow does not hold")
            + 1;
        self.stats.record_rank(rank);
        if let Some(top) = self.current_top {
            if top == (prio, item) {
                let skips = self.skips;
                self.stats.record_inv(skips);
                self.skips = 0;
                // The episode for this element is complete; if it is peeked
                // again without being deleted a fresh episode begins.
            } else {
                self.skips += 1;
            }
        }
        Some(got)
    }

    fn delete(&mut self, item: usize) -> bool {
        let Some(Some(prio)) = self.prio_of.get(item).copied() else {
            debug_assert!(!self.inner.delete(item));
            return false;
        };
        let ok = self.inner.delete(item);
        debug_assert!(ok);
        self.shadow.remove(&(prio, item));
        self.prio_of[item] = None;
        self.sync_top();
        ok
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        let Some(Some(old)) = self.prio_of.get(item).copied() else {
            return false;
        };
        if prio >= old {
            return false;
        }
        let ok = self.inner.decrease_key(item, prio);
        debug_assert!(ok);
        self.shadow.remove(&(old, item));
        self.shadow.insert((prio, item));
        self.prio_of[item] = Some(prio);
        self.sync_top();
        ok
    }

    fn contains(&self, item: usize) -> bool {
        self.inner.contains(item)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn relaxation_factor(&self) -> usize {
        self.inner.relaxation_factor()
    }
}

// ---------------------------------------------------------------------
// Concurrent FIFO rank-error estimation
// ---------------------------------------------------------------------

/// Timestamp-based **concurrent** FIFO rank-error estimator (the PPoPP
/// 2025 d-CBO measurement methodology).
///
/// The sequential [`FifoRankTracker`](crate::fifo::FifoRankTracker)
/// serializes every operation through a shadow set, so it cannot measure
/// a queue *under contention*. This estimator instead adds two global
/// tickets:
///
/// * every enqueue draws an **arrival stamp** (`fetch_add` on one
///   counter) that travels with the item;
/// * every dequeue draws a **dequeue ticket** (a second counter) and
///   logs `(ticket, stamp)` into the recording thread's private buffer.
///
/// Afterwards, [`into_stats`](Self::into_stats) merges the logs, replays
/// the dequeues in ticket order and computes each dequeue's rank error
/// as `stamp − |{earlier-dequeued stamps < stamp}|` — the number of
/// older items still inside the queue, assuming stamp allocation order
/// approximates enqueue completion order. In-flight enqueues at a
/// dequeue's linearization point can inflate an error by at most the
/// number of concurrently enqueuing threads, which is what makes this an
/// *estimator*; the run-time cost is two uncontended-path `fetch_add`s
/// per operation plus a thread-local `Vec` push, cheap enough to leave
/// on during contention benchmarks.
///
/// # Examples
///
/// ```
/// use rsched_queues::instrument::ConcurrentRankEstimator;
/// use std::collections::VecDeque;
///
/// let est = ConcurrentRankEstimator::new();
/// let mut q = VecDeque::new();
/// {
///     let mut rec = est.recorder();
///     for v in 0..100u64 {
///         let stamp = rec.stamp_enqueue();
///         q.push_back(stamp);
///         let _ = v;
///     }
///     while let Some(stamp) = q.pop_front() {
///         rec.record_dequeue(stamp);
///     }
/// }
/// let stats = est.into_stats();
/// assert_eq!(stats.dequeues, 100);
/// assert_eq!(stats.max_error, 0, "an exact FIFO has zero rank error");
/// ```
#[derive(Debug, Default)]
pub struct ConcurrentRankEstimator {
    enq_ticket: CachePadded<AtomicU64>,
    deq_ticket: CachePadded<AtomicU64>,
    logs: Mutex<Vec<Vec<(u64, u64)>>>,
}

impl ConcurrentRankEstimator {
    /// A fresh estimator; create one per measured run.
    pub fn new() -> Self {
        Self::default()
    }

    /// A per-thread recorder. Create one per worker thread; its log is
    /// folded into the estimator when the recorder drops.
    pub fn recorder(&self) -> RankRecorder<'_> {
        RankRecorder {
            est: self,
            log: Vec::new(),
        }
    }

    /// Total enqueue stamps handed out so far.
    pub fn enqueues(&self) -> u64 {
        self.enq_ticket.load(Ordering::Relaxed)
    }

    /// Replay the collected logs in dequeue-ticket order and aggregate
    /// the estimated rank errors. Drop all recorders first (the borrow
    /// checker enforces it).
    pub fn into_stats(self) -> FifoRankStats {
        let total = self.enq_ticket.load(Ordering::Relaxed) as usize;
        let mut events: Vec<(u64, u64)> = self.logs.into_inner().into_iter().flatten().collect();
        events.sort_unstable();
        // Fenwick tree over stamps: prefix(s) = dequeues so far with
        // stamp < s.
        let mut fenwick = vec![0u64; total + 1];
        let prefix = |fenwick: &[u64], mut i: usize| {
            let mut sum = 0u64;
            while i > 0 {
                sum += fenwick[i];
                i -= i & i.wrapping_neg();
            }
            sum
        };
        let mut stats = FifoRankStats::default();
        for &(_, stamp) in &events {
            let dequeued_below = prefix(&fenwick, stamp as usize);
            stats.record(stamp - dequeued_below);
            let mut i = stamp as usize + 1;
            while i <= total {
                fenwick[i] += 1;
                i += i & i.wrapping_neg();
            }
        }
        stats
    }
}

/// One thread's handle into a [`ConcurrentRankEstimator`].
#[derive(Debug)]
pub struct RankRecorder<'a> {
    est: &'a ConcurrentRankEstimator,
    log: Vec<(u64, u64)>,
}

impl RankRecorder<'_> {
    /// Draw the arrival stamp for an enqueue; store it with (or as) the
    /// enqueued item.
    pub fn stamp_enqueue(&self) -> u64 {
        self.est.enq_ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Log a dequeue of the item carrying `stamp`.
    pub fn record_dequeue(&mut self, stamp: u64) {
        let ticket = self.est.deq_ticket.fetch_add(1, Ordering::Relaxed);
        self.log.push((ticket, stamp));
    }
}

impl Drop for RankRecorder<'_> {
    fn drop(&mut self) {
        if !self.log.is_empty() {
            self.est.logs.lock().push(std::mem::take(&mut self.log));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exact, IndexedBinaryHeap, RotatingKQueue, SimMultiQueue, SprayList};

    fn drain_tracked<P, Q>(q: &mut RankTracker<P, Q>)
    where
        P: Ord + Copy,
        Q: RelaxedQueue<P>,
    {
        while let Some((item, _)) = q.peek_relaxed() {
            q.delete(item);
        }
    }

    #[test]
    fn exact_queue_has_rank_one_and_zero_inv() {
        let mut q = RankTracker::new(Exact(IndexedBinaryHeap::<u64>::new()));
        for i in 0..200usize {
            q.insert(i, (i as u64 * 17) % 31);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        assert_eq!(s.peeks, 200);
        assert_eq!(s.max_rank, 1);
        assert_eq!(s.mean_rank(), 1.0);
        assert_eq!(s.max_inv, 0);
        assert_eq!(s.exact_fraction(), 1.0);
    }

    #[test]
    fn rotating_queue_respects_its_bounds() {
        let k = 6;
        let mut q = RankTracker::new(RotatingKQueue::<u64>::new(k));
        for i in 0..300usize {
            q.insert(i, (i as u64 * 7) % 293);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        assert!(
            s.max_rank <= k,
            "RankBound violated: max rank {} > k {}",
            s.max_rank,
            k
        );
        assert!(
            s.max_inv <= (k - 1) as u64,
            "Fairness violated: max inv {} > k-1 {}",
            s.max_inv,
            k - 1
        );
    }

    #[test]
    fn multiqueue_ranks_scale_with_queue_count() {
        // More internal queues => larger relaxation. Verify the mean rank is
        // monotone-ish in q on the same workload.
        let mean_for = |nq: usize| {
            let mut q = RankTracker::new(SimMultiQueue::<u64>::new(nq, 7));
            for i in 0..4000usize {
                q.insert(i, i as u64);
            }
            drain_tracked(&mut q);
            q.stats().mean_rank()
        };
        let m1 = mean_for(1);
        let m4 = mean_for(4);
        let m16 = mean_for(16);
        assert_eq!(m1, 1.0, "single queue is exact");
        assert!(m4 > 1.0);
        assert!(
            m16 > m4,
            "mean rank should grow with queues: q=4 -> {m4}, q=16 -> {m16}"
        );
    }

    #[test]
    fn multiqueue_empirical_rank_within_theory() {
        // PODC 2017: rank is O(q log q) w.h.p. Check the 99th percentile sits
        // within a small multiple of q log q.
        let nq = 8;
        let mut q = RankTracker::new(SimMultiQueue::<u64>::new(nq, 21));
        for i in 0..8000usize {
            q.insert(i, i as u64);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        let qlogq = (nq as f64) * (nq as f64).log2().max(1.0);
        let p99 = s.rank_quantile(0.99) as f64;
        assert!(
            p99 <= 6.0 * qlogq,
            "99th percentile rank {p99} far beyond O(q log q) = {qlogq}"
        );
    }

    #[test]
    fn spraylist_rank_bounded_by_spray_window() {
        let mut q = RankTracker::new(SprayList::<u64>::new(8, 9));
        for i in 0..5000usize {
            q.insert(i, i as u64);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        assert!(s.peeks >= 5000);
        assert!(
            s.max_rank <= q.relaxation_factor() * 4,
            "spray rank {} beyond 4x nominal window {}",
            s.max_rank,
            q.relaxation_factor()
        );
    }

    #[test]
    fn decrease_key_is_tracked() {
        let mut q = RankTracker::new(RotatingKQueue::<u64>::new(2));
        q.insert(0, 10);
        q.insert(1, 20);
        assert!(q.decrease_key(1, 5));
        let (item, prio) = q.peek_relaxed().unwrap();
        assert_eq!((item, prio), (1, 5));
        // Rank 1: the shadow agrees the decreased element is the minimum.
        assert_eq!(q.stats().max_rank, 1);
    }

    #[test]
    fn estimator_exact_fifo_has_zero_error() {
        let est = ConcurrentRankEstimator::new();
        {
            let mut rec = est.recorder();
            let mut q = std::collections::VecDeque::new();
            for _ in 0..500 {
                q.push_back(rec.stamp_enqueue());
            }
            while let Some(s) = q.pop_front() {
                rec.record_dequeue(s);
            }
        }
        let stats = est.into_stats();
        assert_eq!(stats.dequeues, 500);
        assert_eq!(stats.max_error, 0);
        assert_eq!(stats.exact_fraction(), 1.0);
    }

    #[test]
    fn estimator_matches_hand_computed_errors() {
        // Enqueue stamps 0..4, dequeue in order 1, 0, 3, 2:
        //   deq 1: item 0 still inside          -> error 1
        //   deq 0: nothing older inside         -> error 0
        //   deq 3: item 2 still inside          -> error 1
        //   deq 2: nothing older inside         -> error 0
        let est = ConcurrentRankEstimator::new();
        {
            let mut rec = est.recorder();
            for _ in 0..4 {
                rec.stamp_enqueue();
            }
            for s in [1u64, 0, 3, 2] {
                rec.record_dequeue(s);
            }
        }
        let stats = est.into_stats();
        assert_eq!(stats.dequeues, 4);
        assert_eq!(stats.max_error, 1);
        assert_eq!(stats.sum_error, 2);
    }

    #[test]
    fn estimator_merges_logs_across_recorders() {
        let est = ConcurrentRankEstimator::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut rec = est.recorder();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let s = rec.stamp_enqueue();
                        rec.record_dequeue(s);
                    }
                });
            }
        });
        let stats = est.into_stats();
        assert_eq!(stats.dequeues, 4000);
        // Each thread dequeues its own stamp immediately; only stamps
        // drawn by concurrently racing threads can sit "inside", so the
        // estimated error is below the thread count.
        assert!(stats.max_error < 4, "max error {}", stats.max_error);
    }

    #[test]
    fn estimator_measures_dcbo_under_load() {
        use crate::builder::QueueBuilder;
        use crate::fifo::DCboQueue;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let shards = 8;
        let q: DCboQueue<u64> = QueueBuilder::new(shards).seed(3).d_cbo();
        let est = ConcurrentRankEstimator::new();
        {
            let mut rec = est.recorder();
            let mut rng = SmallRng::seed_from_u64(11);
            for _ in 0..4000u64 {
                q.enqueue(rec.stamp_enqueue(), &mut rng);
            }
            while let Some(s) = q.dequeue(&mut rng) {
                rec.record_dequeue(s);
            }
        }
        let stats = est.into_stats();
        assert_eq!(stats.dequeues, 4000);
        // Sequentially the estimator must agree with the envelope the
        // exact tracker measures: mean error around the shard count.
        assert!(
            stats.mean_error() <= 4.0 * shards as f64,
            "mean error {} far beyond shards",
            stats.mean_error()
        );
    }
}
