//! Empirical rank / fairness instrumentation.
//!
//! [`RankTracker`] wraps any [`RelaxedQueue`] and maintains a *shadow* exact
//! ordered set of the queue's contents. Every `peek_relaxed` is measured
//! against the shadow:
//!
//! * the **rank** of the returned element (1 = exact minimum) — the paper's
//!   `rank(t)`, whose bound `rank(t) ≤ k` is the RankBound property;
//! * the **inversion count** `inv(u)` of every element `u` that becomes the
//!   global minimum: the number of peeks between `u` becoming the minimum
//!   and `u` being returned — whose bound `inv(u) ≤ k − 1` is the Fairness
//!   property.
//!
//! The tests in this crate use the tracker to *prove-by-execution* that the
//! deterministic schedulers never violate the bounds and to measure the
//! empirical distributions for the randomized ones (MultiQueue, SprayList),
//! reproducing the "relaxation factor is proportional to the number of
//! queues" observation used in Figure 2 of the paper.

use crate::RelaxedQueue;
use std::collections::BTreeSet;

/// Aggregated rank / inversion statistics.
#[derive(Clone, Debug, Default)]
pub struct RankStats {
    /// Number of successful `peek_relaxed` calls measured.
    pub peeks: u64,
    /// Largest observed rank (1-based).
    pub max_rank: usize,
    /// Sum of observed ranks (for the mean).
    pub sum_rank: u128,
    /// `rank_hist[r]` = number of peeks that returned the rank-`r+1`
    /// element; ranks beyond the histogram length land in the last bucket.
    pub rank_hist: Vec<u64>,
    /// Number of completed top-element episodes (element became the minimum
    /// and was subsequently returned or removed).
    pub tops: u64,
    /// Largest observed inversion count.
    pub max_inv: u64,
    /// Sum of inversion counts (for the mean).
    pub sum_inv: u128,
}

impl RankStats {
    const HIST_BUCKETS: usize = 1024;

    /// Mean rank of returned elements (1.0 = always exact).
    pub fn mean_rank(&self) -> f64 {
        if self.peeks == 0 {
            0.0
        } else {
            self.sum_rank as f64 / self.peeks as f64
        }
    }

    /// Mean inversion count over completed top episodes.
    pub fn mean_inv(&self) -> f64 {
        if self.tops == 0 {
            0.0
        } else {
            self.sum_inv as f64 / self.tops as f64
        }
    }

    /// Fraction of peeks that returned the exact minimum.
    pub fn exact_fraction(&self) -> f64 {
        if self.peeks == 0 {
            return 0.0;
        }
        let exact = self.rank_hist.first().copied().unwrap_or(0);
        exact as f64 / self.peeks as f64
    }

    /// The `q`-quantile (e.g. `0.99`) of the rank distribution.
    pub fn rank_quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q));
        let target = (self.peeks as f64 * q).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.rank_hist.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i + 1;
            }
        }
        self.max_rank
    }

    fn record_rank(&mut self, rank: usize) {
        if self.rank_hist.is_empty() {
            self.rank_hist = vec![0; Self::HIST_BUCKETS];
        }
        self.peeks += 1;
        self.max_rank = self.max_rank.max(rank);
        self.sum_rank += rank as u128;
        let bucket = (rank - 1).min(Self::HIST_BUCKETS - 1);
        self.rank_hist[bucket] += 1;
    }

    fn record_inv(&mut self, inv: u64) {
        self.tops += 1;
        self.max_inv = self.max_inv.max(inv);
        self.sum_inv += inv as u128;
    }
}

/// A [`RelaxedQueue`] decorator that measures empirical rank and fairness.
///
/// # Examples
///
/// ```
/// use rsched_queues::{RankTracker, SimMultiQueue, RelaxedQueue};
///
/// let mut q = RankTracker::new(SimMultiQueue::new(4, 1));
/// for i in 0..100usize {
///     q.insert(i, i as u64);
/// }
/// while q.pop_relaxed().is_some() {}
/// let stats = q.stats();
/// assert_eq!(stats.peeks, 100);
/// assert!(stats.mean_rank() >= 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct RankTracker<P, Q> {
    inner: Q,
    shadow: BTreeSet<(P, usize)>,
    prio_of: Vec<Option<P>>,
    stats: RankStats,
    /// The element currently believed to be the global minimum, plus the
    /// number of peeks it has been skipped for.
    current_top: Option<(P, usize)>,
    skips: u64,
}

impl<P: Ord + Copy, Q: RelaxedQueue<P>> RankTracker<P, Q> {
    /// Wrap `inner`; the tracker starts empty, so wrap before inserting.
    pub fn new(inner: Q) -> Self {
        assert!(inner.is_empty(), "wrap the queue before filling it");
        Self {
            inner,
            shadow: BTreeSet::new(),
            prio_of: Vec::new(),
            stats: RankStats::default(),
            current_top: None,
            skips: 0,
        }
    }

    /// The collected statistics so far.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Consume the tracker, returning the inner queue and the statistics.
    pub fn into_parts(self) -> (Q, RankStats) {
        (self.inner, self.stats)
    }

    fn ensure(&mut self, item: usize) {
        if item >= self.prio_of.len() {
            self.prio_of.resize(item + 1, None);
        }
    }

    /// Refresh fairness bookkeeping after any structural change.
    fn sync_top(&mut self) {
        let top = self.shadow.first().copied();
        if top != self.current_top {
            // A new element became the global minimum; its episode starts now.
            self.current_top = top;
            self.skips = 0;
        }
    }
}

impl<P: Ord + Copy, Q: RelaxedQueue<P>> RelaxedQueue<P> for RankTracker<P, Q> {
    fn insert(&mut self, item: usize, prio: P) {
        self.ensure(item);
        debug_assert!(self.prio_of[item].is_none());
        self.prio_of[item] = Some(prio);
        self.shadow.insert((prio, item));
        self.inner.insert(item, prio);
        self.sync_top();
    }

    fn peek_relaxed(&mut self) -> Option<(usize, P)> {
        let got = self.inner.peek_relaxed()?;
        let (item, prio) = got;
        let rank = self
            .shadow
            .iter()
            .position(|&e| e == (prio, item))
            .expect("inner queue returned an element the shadow does not hold")
            + 1;
        self.stats.record_rank(rank);
        if let Some(top) = self.current_top {
            if top == (prio, item) {
                let skips = self.skips;
                self.stats.record_inv(skips);
                self.skips = 0;
                // The episode for this element is complete; if it is peeked
                // again without being deleted a fresh episode begins.
            } else {
                self.skips += 1;
            }
        }
        Some(got)
    }

    fn delete(&mut self, item: usize) -> bool {
        let Some(Some(prio)) = self.prio_of.get(item).copied() else {
            debug_assert!(!self.inner.delete(item));
            return false;
        };
        let ok = self.inner.delete(item);
        debug_assert!(ok);
        self.shadow.remove(&(prio, item));
        self.prio_of[item] = None;
        self.sync_top();
        ok
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        let Some(Some(old)) = self.prio_of.get(item).copied() else {
            return false;
        };
        if prio >= old {
            return false;
        }
        let ok = self.inner.decrease_key(item, prio);
        debug_assert!(ok);
        self.shadow.remove(&(old, item));
        self.shadow.insert((prio, item));
        self.prio_of[item] = Some(prio);
        self.sync_top();
        ok
    }

    fn contains(&self, item: usize) -> bool {
        self.inner.contains(item)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn relaxation_factor(&self) -> usize {
        self.inner.relaxation_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exact, IndexedBinaryHeap, RotatingKQueue, SimMultiQueue, SprayList};

    fn drain_tracked<P, Q>(q: &mut RankTracker<P, Q>)
    where
        P: Ord + Copy,
        Q: RelaxedQueue<P>,
    {
        while let Some((item, _)) = q.peek_relaxed() {
            q.delete(item);
        }
    }

    #[test]
    fn exact_queue_has_rank_one_and_zero_inv() {
        let mut q = RankTracker::new(Exact(IndexedBinaryHeap::<u64>::new()));
        for i in 0..200usize {
            q.insert(i, (i as u64 * 17) % 31);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        assert_eq!(s.peeks, 200);
        assert_eq!(s.max_rank, 1);
        assert_eq!(s.mean_rank(), 1.0);
        assert_eq!(s.max_inv, 0);
        assert_eq!(s.exact_fraction(), 1.0);
    }

    #[test]
    fn rotating_queue_respects_its_bounds() {
        let k = 6;
        let mut q = RankTracker::new(RotatingKQueue::<u64>::new(k));
        for i in 0..300usize {
            q.insert(i, (i as u64 * 7) % 293);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        assert!(
            s.max_rank <= k,
            "RankBound violated: max rank {} > k {}",
            s.max_rank,
            k
        );
        assert!(
            s.max_inv <= (k - 1) as u64,
            "Fairness violated: max inv {} > k-1 {}",
            s.max_inv,
            k - 1
        );
    }

    #[test]
    fn multiqueue_ranks_scale_with_queue_count() {
        // More internal queues => larger relaxation. Verify the mean rank is
        // monotone-ish in q on the same workload.
        let mean_for = |nq: usize| {
            let mut q = RankTracker::new(SimMultiQueue::<u64>::new(nq, 7));
            for i in 0..4000usize {
                q.insert(i, i as u64);
            }
            drain_tracked(&mut q);
            q.stats().mean_rank()
        };
        let m1 = mean_for(1);
        let m4 = mean_for(4);
        let m16 = mean_for(16);
        assert_eq!(m1, 1.0, "single queue is exact");
        assert!(m4 > 1.0);
        assert!(
            m16 > m4,
            "mean rank should grow with queues: q=4 -> {m4}, q=16 -> {m16}"
        );
    }

    #[test]
    fn multiqueue_empirical_rank_within_theory() {
        // PODC 2017: rank is O(q log q) w.h.p. Check the 99th percentile sits
        // within a small multiple of q log q.
        let nq = 8;
        let mut q = RankTracker::new(SimMultiQueue::<u64>::new(nq, 21));
        for i in 0..8000usize {
            q.insert(i, i as u64);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        let qlogq = (nq as f64) * (nq as f64).log2().max(1.0);
        let p99 = s.rank_quantile(0.99) as f64;
        assert!(
            p99 <= 6.0 * qlogq,
            "99th percentile rank {p99} far beyond O(q log q) = {qlogq}"
        );
    }

    #[test]
    fn spraylist_rank_bounded_by_spray_window() {
        let mut q = RankTracker::new(SprayList::<u64>::new(8, 9));
        for i in 0..5000usize {
            q.insert(i, i as u64);
        }
        drain_tracked(&mut q);
        let s = q.stats();
        assert!(s.peeks >= 5000);
        assert!(
            s.max_rank <= q.relaxation_factor() * 4,
            "spray rank {} beyond 4x nominal window {}",
            s.max_rank,
            q.relaxation_factor()
        );
    }

    #[test]
    fn decrease_key_is_tracked() {
        let mut q = RankTracker::new(RotatingKQueue::<u64>::new(2));
        q.insert(0, 10);
        q.insert(1, 20);
        assert!(q.decrease_key(1, 5));
        let (item, prio) = q.peek_relaxed().unwrap();
        assert_eq!((item, prio), (1, 5));
        // Rank 1: the shadow agrees the decreased element is the minimum.
        assert_eq!(q.stats().max_rank, 1);
    }
}
