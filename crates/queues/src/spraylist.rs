//! SprayList-style relaxed priority queue (Alistarh, Kopinsky, Li, Shavit,
//! PPoPP 2015).
//!
//! The SprayList is a skip list whose `delete-min` performs a **spray**: a
//! random descending walk from a height of roughly `log p` that lands on one
//! of the first `O(p log³ p)` elements almost uniformly, where `p` is the
//! number of threads the structure is tuned for. Spreading the delete-mins
//! over a window of the smallest elements removes the contention hot-spot at
//! the head of the list — at the price of relaxation, which is exactly the
//! trade-off the SPAA 2019 paper quantifies.
//!
//! This implementation is a faithful *sequential-model* SprayList: an
//! arena-based skip list plus the spray walk with the standard parameter
//! shapes (start height `⌊log₂ p⌋ + K`, per-level jump uniform in `[0, M]`,
//! descend `D` levels at a time, and a `1/p` chance of acting as a "cleaner"
//! that performs an exact delete-min — the mechanism the original paper uses
//! to guarantee that the minimum is eventually collected). It plugs into the
//! sequential scheduling model of Sections 2–5. The concurrent experiments
//! of the paper use the MultiQueue, which this crate provides in a fully
//! concurrent form; see `DESIGN.md` for this documented substitution.

use crate::{RelaxedQueue, NOT_PRESENT};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NIL: usize = usize::MAX;
const MAX_HEIGHT: usize = 32;

/// Tuning parameters of the spray walk. The defaults follow the shapes in
/// the PPoPP 2015 paper (Section "The SprayList Algorithm").
#[derive(Clone, Copy, Debug)]
pub struct SprayParams {
    /// Added to `⌊log₂ p⌋` to obtain the starting height.
    pub height_offset: usize,
    /// Maximum per-level jump length is `jump_mult · ⌈log₂(p+2)⌉`.
    pub jump_mult: usize,
    /// Number of levels to descend between jumps.
    pub descend: usize,
}

impl Default for SprayParams {
    fn default() -> Self {
        Self {
            height_offset: 1,
            jump_mult: 1,
            descend: 1,
        }
    }
}

#[derive(Clone, Debug)]
struct Node<P> {
    prio: P,
    item: usize,
    /// `next[l]` = arena index of the successor at level `l`.
    next: Vec<usize>,
}

/// A sequential skip-list priority queue with spray-based relaxed delete-min.
///
/// # Examples
///
/// ```
/// use rsched_queues::{SprayList, RelaxedQueue};
///
/// // Tuned as if 8 threads were spraying.
/// let mut sl = SprayList::new(8, 0xFEED);
/// for i in 0..200usize {
///     sl.insert(i, i as u64);
/// }
/// let (item, prio) = sl.pop_relaxed().unwrap();
/// assert_eq!(item as u64, prio);
/// // The spray returns one of the smallest O(p log^3 p) elements.
/// assert!(prio < 200);
/// ```
#[derive(Clone, Debug)]
pub struct SprayList<P> {
    nodes: Vec<Node<P>>,
    /// Head sentinel's forward pointers (conceptually priority −∞).
    head: Vec<usize>,
    /// `slot_of[item]` = arena index, or `NOT_PRESENT`.
    slot_of: Vec<usize>,
    free: Vec<usize>,
    len: usize,
    /// The "thread count" the spray is tuned for.
    p: usize,
    params: SprayParams,
    rng: SmallRng,
}

impl<P: Ord + Copy> SprayList<P> {
    /// A SprayList tuned for `p` simulated threads with default parameters.
    pub fn new(p: usize, seed: u64) -> Self {
        Self::with_params(p, seed, SprayParams::default())
    }

    /// A SprayList with explicit [`SprayParams`].
    pub fn with_params(p: usize, seed: u64, params: SprayParams) -> Self {
        assert!(p > 0, "SprayList thread parameter must be positive");
        assert!(params.descend > 0, "descend must be positive");
        Self {
            nodes: Vec::new(),
            head: vec![NIL; MAX_HEIGHT],
            slot_of: Vec::new(),
            free: Vec::new(),
            len: 0,
            p,
            params,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The thread parameter `p` the spray is tuned for.
    pub fn thread_parameter(&self) -> usize {
        self.p
    }

    #[inline]
    fn key(&self, idx: usize) -> (P, usize) {
        let n = &self.nodes[idx];
        (n.prio, n.item)
    }

    /// Successor of `idx` at level `l`, treating `NIL` idx as the head.
    #[inline]
    fn succ(&self, idx: usize, level: usize) -> usize {
        if idx == NIL {
            self.head[level]
        } else {
            self.nodes[idx].next[level]
        }
    }

    fn set_succ(&mut self, idx: usize, level: usize, to: usize) {
        if idx == NIL {
            self.head[level] = to;
        } else {
            self.nodes[idx].next[level] = to;
        }
    }

    /// Geometric height in `1..=MAX_HEIGHT` with ratio 1/2.
    fn random_height(&mut self) -> usize {
        let bits: u32 = self.rng.gen();
        ((bits.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// Find the predecessor of key `(prio, item)` at every level.
    fn predecessors(&self, prio: P, item: usize) -> [usize; MAX_HEIGHT] {
        let mut preds = [NIL; MAX_HEIGHT];
        let mut cur = NIL;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                let nxt = self.succ(cur, level);
                if nxt != NIL && self.key(nxt) < (prio, item) {
                    cur = nxt;
                } else {
                    break;
                }
            }
            preds[level] = cur;
        }
        preds
    }

    /// Starting height of the spray: `min(⌊log₂ p⌋ + K, current max level)`.
    fn spray_height(&self) -> usize {
        let lg = usize::BITS as usize - 1 - self.p.leading_zeros() as usize;
        let h = lg + self.params.height_offset;
        h.clamp(1, MAX_HEIGHT)
    }

    /// Maximum per-level jump length.
    fn spray_jump(&self) -> usize {
        let lg = usize::BITS as usize - (self.p + 2).leading_zeros() as usize;
        (self.params.jump_mult * lg).max(1)
    }

    /// The spray walk: returns the arena index of the landed node, or the
    /// first node if the walk lands on the head, or `NIL` if empty.
    fn spray(&mut self) -> usize {
        if self.len == 0 {
            return NIL;
        }
        // Cleaner behaviour: with probability 1/p perform an exact peek-min,
        // which guarantees the global minimum is collected regularly (this
        // is the SprayList's fairness mechanism).
        if self.rng.gen_range(0..self.p) == 0 {
            return self.head[0];
        }
        let max_jump = self.spray_jump();
        let mut level = self.spray_height() - 1;
        let mut cur = NIL; // head
        loop {
            let jump = self.rng.gen_range(0..=max_jump);
            for _ in 0..jump {
                let nxt = self.succ(cur, level);
                if nxt == NIL {
                    break;
                }
                cur = nxt;
            }
            if level == 0 {
                break;
            }
            level = level.saturating_sub(self.params.descend);
        }
        if cur == NIL {
            self.head[0]
        } else {
            cur
        }
    }

    fn alloc(&mut self, prio: P, item: usize, height: usize) -> usize {
        let node = Node {
            prio,
            item,
            next: vec![NIL; height],
        };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Debug helper: check level-0 ordering and the slot table.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut cur = self.head[0];
        let mut count = 0;
        let mut prev: Option<(P, usize)> = None;
        while cur != NIL {
            let k = self.key(cur);
            if let Some(pk) = prev {
                assert!(pk < k, "skiplist order violated");
            }
            assert_eq!(self.slot_of[self.nodes[cur].item], cur);
            prev = Some(k);
            count += 1;
            cur = self.nodes[cur].next[0];
        }
        assert_eq!(count, self.len);
        // Every higher level must be a sub-sequence of level 0.
        for level in 1..MAX_HEIGHT {
            let mut cur = self.head[level];
            let mut prev: Option<(P, usize)> = None;
            while cur != NIL {
                let k = self.key(cur);
                if let Some(pk) = prev {
                    assert!(pk < k, "skiplist order violated at level {level}");
                }
                prev = Some(k);
                assert!(self.nodes[cur].next.len() > level);
                cur = self.nodes[cur].next[level];
            }
        }
    }
}

#[allow(clippy::needless_range_loop)] // preds is a fixed-size array indexed by level
impl<P: Ord + Copy> RelaxedQueue<P> for SprayList<P> {
    fn insert(&mut self, item: usize, prio: P) {
        if item >= self.slot_of.len() {
            self.slot_of.resize(item + 1, NOT_PRESENT);
        }
        assert_eq!(
            self.slot_of[item], NOT_PRESENT,
            "item {item} is already in the SprayList"
        );
        let height = self.random_height();
        let preds = self.predecessors(prio, item);
        let idx = self.alloc(prio, item, height);
        for level in 0..height {
            let after = self.succ(preds[level], level);
            self.nodes[idx].next[level] = after;
            self.set_succ(preds[level], level, idx);
        }
        self.slot_of[item] = idx;
        self.len += 1;
    }

    fn peek_relaxed(&mut self) -> Option<(usize, P)> {
        let idx = self.spray();
        if idx == NIL {
            None
        } else {
            let n = &self.nodes[idx];
            Some((n.item, n.prio))
        }
    }

    fn delete(&mut self, item: usize) -> bool {
        let Some(&idx) = self.slot_of.get(item) else {
            return false;
        };
        if idx == NOT_PRESENT {
            return false;
        }
        let (prio, _) = self.key(idx);
        let preds = self.predecessors(prio, item);
        let height = self.nodes[idx].next.len();
        for level in 0..height {
            debug_assert_eq!(self.succ(preds[level], level), idx);
            let after = self.nodes[idx].next[level];
            self.set_succ(preds[level], level, after);
        }
        self.slot_of[item] = NOT_PRESENT;
        self.free.push(idx);
        self.len -= 1;
        true
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        let Some(&idx) = self.slot_of.get(item) else {
            return false;
        };
        if idx == NOT_PRESENT || prio >= self.nodes[idx].prio {
            return false;
        }
        // Skip lists do not support in-place key updates; remove + reinsert
        // (this is also how hash-partitioned schedulers emulate DecreaseKey).
        let deleted = self.delete(item);
        debug_assert!(deleted);
        self.insert(item, prio);
        true
    }

    fn contains(&self, item: usize) -> bool {
        self.slot_of.get(item).is_some_and(|&s| s != NOT_PRESENT)
    }

    fn len(&self) -> usize {
        self.len
    }

    /// The spray covers the first `O(p log³ p)` elements w.h.p.
    fn relaxation_factor(&self) -> usize {
        let lg = (usize::BITS as usize - (self.p + 1).leading_zeros() as usize).max(1);
        (self.p * lg * lg * lg).max(1)
    }
}

/// Thread-safe sharded SprayList.
///
/// `shards` independent [`SprayList`]s behind per-shard locks; items are
/// placed by consistent hashing (so `delete`/`decrease_key` can find them)
/// and `pop` sprays a random shard via `try_lock`, falling back to a sweep.
/// Composition keeps the relaxed semantics: a spray over a uniformly random
/// shard of `s` lists of combined front window `w` lands within the first
/// `O(s·w)` elements overall, so the structure is a relaxed priority queue
/// with a correspondingly larger (still bounded) relaxation factor. The
/// original SprayList is lock-free; this lock-based variant preserves the
/// *relaxation semantics* the paper relies on (see DESIGN.md deviations).
/// One shard of a [`ConcurrentSprayList`].
type SprayShard<P> = crossbeam::utils::CachePadded<parking_lot::Mutex<SprayList<P>>>;

pub struct ConcurrentSprayList<P> {
    shards: Box<[SprayShard<P>]>,
    len: std::sync::atomic::AtomicUsize,
}

impl<P: Ord + Copy + Send> ConcurrentSprayList<P> {
    /// `shards` shards, each a SprayList tuned for `p_per_shard` threads.
    pub fn new(shards: usize, p_per_shard: usize, seed: u64) -> Self {
        assert!(shards > 0);
        Self {
            shards: (0..shards)
                .map(|i| {
                    crossbeam::utils::CachePadded::new(parking_lot::Mutex::new(SprayList::new(
                        p_per_shard,
                        seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
                    )))
                })
                .collect(),
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, item: usize) -> usize {
        let h = (item as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Number of stored items (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Acquire)
    }

    /// `true` if empty (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert `item` with priority `prio` (must not be present).
    pub fn insert(&self, item: usize, prio: P) {
        self.shards[self.shard_of(item)].lock().insert(item, prio);
        self.len.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Insert, or lower the priority if present with a larger one. Returns
    /// `true` if a new element was inserted.
    pub fn push_or_decrease(&self, item: usize, prio: P) -> bool {
        let mut shard = self.shards[self.shard_of(item)].lock();
        if shard.contains(item) {
            shard.decrease_key(item, prio);
            false
        } else {
            shard.insert(item, prio);
            drop(shard);
            self.len.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            true
        }
    }

    /// Spray-pop from a random shard; `None` only after a full sweep found
    /// every shard empty (same caveat as the concurrent MultiQueue: callers
    /// own termination detection).
    pub fn pop<R: rand::Rng>(&self, rng: &mut R) -> Option<(usize, P)> {
        let s = self.shards.len();
        for _ in 0..(4 * s + 8) {
            let i = rng.gen_range(0..s);
            let Some(mut shard) = self.shards[i].try_lock() else {
                continue;
            };
            if let Some(got) = shard.pop_relaxed() {
                drop(shard);
                self.len.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
                return Some(got);
            }
            if self.is_empty() {
                break;
            }
        }
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            if let Some(got) = shard.pop_relaxed() {
                drop(shard);
                self.len.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
                return Some(got);
            }
        }
        None
    }

    /// Remove `item` wherever it is stored.
    pub fn remove(&self, item: usize) -> bool {
        let removed = self.shards[self.shard_of(item)].lock().delete(item);
        if removed {
            self.len.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_delete_roundtrip() {
        let mut sl = SprayList::new(4, 1);
        for i in 0..100usize {
            sl.insert(i, (i as u64 * 37) % 61);
        }
        sl.check_invariants();
        assert_eq!(sl.len(), 100);
        for i in (0..100).step_by(2) {
            assert!(RelaxedQueue::delete(&mut sl, i));
        }
        sl.check_invariants();
        assert_eq!(sl.len(), 50);
        for i in 0..100usize {
            assert_eq!(sl.contains(i), i % 2 == 1);
        }
    }

    #[test]
    fn pop_all_unique() {
        let mut sl = SprayList::new(8, 2);
        for i in 0..500usize {
            sl.insert(i, i as u64);
        }
        let mut seen = HashSet::new();
        while let Some((item, _)) = sl.pop_relaxed() {
            assert!(seen.insert(item));
        }
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn spray_lands_near_front() {
        // With p = 8 the spray range is O(p log^3 p); verify empirically that
        // sprays on a 10_000-element list land well within the first ~1500
        // positions (generous slack over p * lg^3 p = 8 * 4^3 = 512).
        let mut sl = SprayList::new(8, 3);
        for i in 0..10_000usize {
            sl.insert(i, i as u64);
        }
        for _ in 0..2000 {
            let (_, prio) = sl.peek_relaxed().unwrap();
            assert!(
                prio < 4096,
                "spray landed at rank {prio}, far beyond the relaxation window"
            );
        }
    }

    #[test]
    fn spray_hits_minimum_regularly() {
        // The 1/p cleaner path guarantees the minimum is returned with
        // frequency ~1/p; check it is seen at all over many sprays.
        let mut sl = SprayList::new(8, 4);
        for i in 0..1000usize {
            sl.insert(i, i as u64);
        }
        let mut min_hits = 0;
        for _ in 0..1000 {
            if let Some((item, _)) = sl.peek_relaxed() {
                if item == 0 {
                    min_hits += 1;
                }
            }
        }
        assert!(
            min_hits > 20,
            "minimum returned only {min_hits}/1000 times; fairness path broken?"
        );
    }

    #[test]
    fn decrease_key_reorders() {
        let mut sl = SprayList::new(2, 5);
        for i in 0..50usize {
            sl.insert(i, 100 + i as u64);
        }
        assert!(sl.decrease_key(49, 1));
        sl.check_invariants();
        // 49 is now the global minimum: a level-0 head walk must find it first.
        let first = sl.head[0];
        assert_eq!(sl.nodes[first].item, 49);
        assert!(!sl.decrease_key(49, 1000), "increase rejected");
    }

    #[test]
    fn singleton_behaviour() {
        let mut sl = SprayList::new(16, 6);
        assert_eq!(sl.peek_relaxed(), None);
        sl.insert(3, 33u64);
        for _ in 0..10 {
            assert_eq!(sl.peek_relaxed(), Some((3, 33)));
        }
        assert_eq!(sl.pop_relaxed(), Some((3, 33)));
        assert_eq!(sl.pop_relaxed(), None);
    }

    #[test]
    fn concurrent_spraylist_multithreaded_no_loss() {
        use std::sync::Arc;
        let csl: Arc<ConcurrentSprayList<u64>> = Arc::new(ConcurrentSprayList::new(4, 4, 9));
        let threads = 4;
        let per = 1000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let csl = Arc::clone(&csl);
                std::thread::spawn(move || {
                    use rand::SeedableRng;
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64);
                    let mut popped = Vec::new();
                    for i in 0..per {
                        csl.insert(t * per + i, (i as u64 * 31) % 997);
                        if i % 2 == 0 {
                            if let Some((it, _)) = csl.pop(&mut rng) {
                                popped.push(it);
                            }
                        }
                    }
                    popped
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for it in h.join().unwrap() {
                assert!(seen.insert(it), "duplicate pop {it}");
            }
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        while let Some((it, _)) = csl.pop(&mut rng) {
            assert!(seen.insert(it), "duplicate pop {it}");
        }
        assert_eq!(seen.len(), threads * per);
    }

    #[test]
    fn concurrent_spraylist_decrease_and_remove() {
        let csl: ConcurrentSprayList<u64> = ConcurrentSprayList::new(2, 2, 1);
        assert!(csl.push_or_decrease(5, 100));
        assert!(!csl.push_or_decrease(5, 50));
        assert_eq!(csl.len(), 1);
        assert!(csl.remove(5));
        assert!(!csl.remove(5));
        assert!(csl.is_empty());
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut sl = SprayList::new(2, 7);
        for round in 0..5 {
            for i in 0..100usize {
                sl.insert(i, (i + round) as u64);
            }
            while sl.pop_relaxed().is_some() {}
        }
        // Free-list reuse keeps the arena bounded by the peak size.
        assert!(sl.nodes.len() <= 100);
    }
}
