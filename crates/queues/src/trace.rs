//! Flight-recorder tracing: per-worker event rings and Chrome-trace
//! export.
//!
//! The [`telemetry`](crate::telemetry) layer answers *how bad* the
//! tails are; this module answers *when and why* a tail event happened.
//! It is an always-compiled, env-gated flight recorder: every thread
//! that participates in scheduling owns a fixed-capacity ring of packed
//! 16-byte events ([`EventKind`] + nanosecond timestamp + payload) with
//! wrap-around overwrite, so
//!
//! * the steady-state cost of a recorded event is one monotonic clock
//!   read and a handful of relaxed stores into thread-owned cache lines
//!   (no allocation, no locks, no shared-memory contention), and
//! * a crash or a stall always leaves the **last N events per worker**
//!   inspectable — exactly the window a convoy/stall forensics pass
//!   needs.
//!
//! Rings are single-producer (the owning thread) / snapshot-consumer
//! (a [`TraceSink`] reading at `run()`/drain boundaries). Lanes are
//! pooled: when a thread exits, its ring goes back to a free list and
//! the next thread reuses it, so trial-per-rep benchmarks do not grow
//! the registry without bound. Timestamps come from one process-wide
//! [`Instant`] epoch, so they are comparable — and monotone — across
//! lanes.
//!
//! # Gate
//!
//! The whole layer sits behind `RSCHED_TRACE` (default **off**, unlike
//! telemetry): when off, each instrumentation point costs a single
//! relaxed atomic load and a predictable branch — the same discipline
//! as `RSCHED_TELEMETRY`. [`set_enabled`] overrides the env default
//! (the runtime does this from `RuntimeConfig::trace`).
//!
//! # Knobs
//!
//! | env | meaning | default |
//! |---|---|---|
//! | `RSCHED_TRACE` | master gate (`1` on, `0` off) | off |
//! | `RSCHED_TRACE_EVENTS` | ring capacity in events (rounded up to a power of two, clamped to `[64, 1M]`) | 4096 |
//! | `RSCHED_TRACE_OUT` | Chrome-trace export path | `rsched_trace.json` |
//!
//! # Export
//!
//! [`TraceSink::export`] snapshots every lane and writes Chrome
//! trace-event JSON (the `chrome://tracing` / Perfetto format): one
//! process (`pid` 1) per run, one `tid` per lane, `B`/`E` duration
//! events for [`EventKind::TaskPop`] → [`EventKind::TaskComplete`]
//! spans, and `i` instant events for everything else (parks, steals,
//! flushes, admission rejects). Open the file at <https://ui.perfetto.dev>
//! (or `chrome://tracing`) to see per-worker timelines.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Enable gate (same tri-state idiom as telemetry::enabled)
// ---------------------------------------------------------------------

const GATE_UNSET: u8 = 0;
const GATE_ON: u8 = 1;
const GATE_OFF: u8 = 2;

/// Tri-state so the first [`enabled`] call can consult the
/// `RSCHED_TRACE` environment variable exactly once.
static GATE: AtomicU8 = AtomicU8::new(GATE_UNSET);

/// `true` when the flight recorder is on. One relaxed load on the hot
/// path — this is the *entire* disabled-path cost of every [`emit`].
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => init_gate_from_env(),
    }
}

#[cold]
fn init_gate_from_env() -> bool {
    // Default OFF: tracing is a forensics tool, not an ambient cost.
    let on = std::env::var("RSCHED_TRACE").is_ok_and(|v| v != "0");
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    on
}

/// Turn the recorder on or off process-wide (overrides the env default).
pub fn set_enabled(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------

/// Scheduler lifecycle events the flight recorder knows about. The
/// discriminant is the on-ring kind byte — append-only; never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A task entered the system (runtime spawn or service inject);
    /// payload = item id.
    TaskInject = 1,
    /// A worker claimed a task from the queue; payload = item id. Opens
    /// a span closed by the next [`EventKind::TaskComplete`] on the
    /// same lane.
    TaskPop = 2,
    /// The claimed task's handler returned; payload = item id.
    TaskComplete = 3,
    /// A pop was satisfied by a steal (foreign shard) rather than a
    /// home shard; payload = item id.
    StealRound = 4,
    /// A session flush published buffered spawns; payload = elements
    /// published.
    FlushPublish = 5,
    /// Of a flush's published elements, some merged; payload = elements
    /// merged.
    FlushMerge = 6,
    /// A service worker found no work and parked on the idle gate.
    Park = 7,
    /// A parked service worker woke (payload 1 = woke to new work,
    /// 0 = timeout re-check).
    Unpark = 8,
    /// A worker observed quiescence and left its loop (closed-loop
    /// drain) or the service began draining.
    Drain = 9,
    /// The serving front-end refused a Submit; payload = the wire
    /// reject code (`RejectCode`).
    AdmissionReject = 10,
}

impl EventKind {
    /// Every kind, in discriminant order (for exhaustive validators).
    pub const ALL: [EventKind; 10] = [
        EventKind::TaskInject,
        EventKind::TaskPop,
        EventKind::TaskComplete,
        EventKind::StealRound,
        EventKind::FlushPublish,
        EventKind::FlushMerge,
        EventKind::Park,
        EventKind::Unpark,
        EventKind::Drain,
        EventKind::AdmissionReject,
    ];

    /// The kind for on-ring byte `b`, if valid.
    pub fn from_u8(b: u8) -> Option<EventKind> {
        EventKind::ALL.get(b.wrapping_sub(1) as usize).copied()
    }

    /// Stable name, used as the Chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskInject => "inject",
            EventKind::TaskPop => "pop",
            EventKind::TaskComplete => "complete",
            EventKind::StealRound => "steal",
            EventKind::FlushPublish => "flush_publish",
            EventKind::FlushMerge => "flush_merge",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::Drain => "drain",
            EventKind::AdmissionReject => "reject",
        }
    }
}

/// Payloads are truncated to the low 56 bits; the top byte of the
/// second event word carries the kind.
pub const PAYLOAD_BITS: u32 = 56;
const PAYLOAD_MASK: u64 = (1u64 << PAYLOAD_BITS) - 1;

#[inline]
fn pack(kind: EventKind, payload: u64) -> u64 {
    ((kind as u64) << PAYLOAD_BITS) | (payload & PAYLOAD_MASK)
}

#[inline]
fn unpack(word: u64) -> (Option<EventKind>, u64) {
    (
        EventKind::from_u8((word >> PAYLOAD_BITS) as u8),
        word & PAYLOAD_MASK,
    )
}

// ---------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------

/// Default ring capacity in events (16 bytes each → 64 KiB per lane).
pub const DEFAULT_RING_EVENTS: usize = 4096;

/// One 16-byte ring slot: the timestamp word and the packed
/// kind/payload word, both relaxed atomics so a concurrent snapshot is
/// defined behaviour (a torn slot decodes to an invalid kind and is
/// dropped by [`snapshot`]).
struct Slot {
    ts: AtomicU64,
    word: AtomicU64,
}

/// A single-producer flight-recorder lane: a power-of-two ring of
/// [`Slot`]s plus a monotone head counter. The owning thread writes;
/// [`snapshot`] reads the last `min(head, capacity)` events.
struct EventRing {
    lane: usize,
    label: Mutex<String>,
    /// Total events ever written to this lane (wraps modulo capacity
    /// into the slot index). Release-published so a snapshot that
    /// observes head `h` also observes the slots written before it.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    fn new(lane: usize, capacity: usize, label: String) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                ts: AtomicU64::new(0),
                word: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            lane,
            label: Mutex::new(label),
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// The steady-state write: one clock read (done by the caller),
    /// two relaxed stores into the slot, one release store of the head.
    #[inline]
    fn push(&self, ts_ns: u64, kind: EventKind, payload: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & (self.slots.len() as u64 - 1)) as usize];
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.word.store(pack(kind, payload), Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Registry + thread-local lane handles
// ---------------------------------------------------------------------

struct Registry {
    /// Every lane ever created, indexed by lane id. Lanes are never
    /// removed — a crash dump wants the last events of exited workers.
    rings: Vec<Arc<EventRing>>,
    /// Lanes whose owning thread exited, available for reuse.
    free: Vec<usize>,
    /// Per-ring capacity, fixed the first time a lane is created
    /// (reads `RSCHED_TRACE_EVENTS` once).
    capacity: usize,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    rings: Vec::new(),
    free: Vec::new(),
    capacity: 0,
});

/// The process-wide timestamp epoch: all lanes stamp nanoseconds since
/// this instant, so cross-lane ordering is meaningful.
static EPOCH: OnceLock<Instant> = OnceLock::new();

#[inline]
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn ring_capacity_from_env() -> usize {
    let want = std::env::var("RSCHED_TRACE_EVENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_RING_EVENTS);
    want.clamp(64, 1 << 20).next_power_of_two()
}

fn acquire_ring() -> Arc<EventRing> {
    let label = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_default();
    let mut reg = REGISTRY.lock().unwrap();
    if reg.capacity == 0 {
        reg.capacity = ring_capacity_from_env();
    }
    if let Some(lane) = reg.free.pop() {
        let ring = reg.rings[lane].clone();
        if !label.is_empty() {
            *ring.label.lock().unwrap() = label;
        }
        return ring;
    }
    let lane = reg.rings.len();
    let label = if label.is_empty() {
        format!("lane-{lane}")
    } else {
        label
    };
    let ring = Arc::new(EventRing::new(lane, reg.capacity, label));
    reg.rings.push(ring.clone());
    ring
}

/// TLS guard: returns the lane to the free list when the thread exits,
/// leaving its events in place for post-mortem snapshots.
struct LaneHandle {
    ring: Arc<EventRing>,
}

impl Drop for LaneHandle {
    fn drop(&mut self) {
        if let Ok(mut reg) = REGISTRY.lock() {
            reg.free.push(self.ring.lane);
        }
    }
}

thread_local! {
    static LANE: RefCell<Option<LaneHandle>> = const { RefCell::new(None) };
}

/// Record one event on the calling thread's lane. No-op (one relaxed
/// load and a branch) when tracing is off; acquires the lane lazily on
/// the first traced event of the thread.
#[inline]
pub fn emit(kind: EventKind, payload: u64) {
    if !enabled() {
        return;
    }
    emit_traced(kind, payload);
}

#[cold]
fn acquire_into(slot: &RefCell<Option<LaneHandle>>) {
    *slot.borrow_mut() = Some(LaneHandle {
        ring: acquire_ring(),
    });
}

#[inline]
fn emit_traced(kind: EventKind, payload: u64) {
    let ts = now_ns();
    let _ = LANE.try_with(|slot| {
        if slot.borrow().is_none() {
            acquire_into(slot);
        }
        if let Some(h) = slot.borrow().as_ref() {
            h.ring.push(ts, kind, payload);
        }
    });
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    pub kind: EventKind,
    /// The low 56 bits the emitter attached (item id, count, code).
    pub payload: u64,
}

/// A point-in-time copy of one lane: its last `≤ capacity` events in
/// chronological order.
#[derive(Clone, Debug)]
pub struct LaneSnapshot {
    /// Lane id — the Chrome-trace `tid`.
    pub lane: usize,
    /// The owning thread's name at acquisition time.
    pub label: String,
    /// Retained events, oldest first, timestamps non-decreasing.
    pub events: Vec<TraceEvent>,
    /// Events overwritten by ring wrap-around (total written minus
    /// retained) — how much history the ring has already forgotten.
    pub overwritten: u64,
}

/// Snapshot every lane. Safe to call while producers are live (torn or
/// mid-overwrite slots decode to an invalid kind or a timestamp
/// regression and are dropped), but the intended call sites are
/// quiescent boundaries: after `run()` joins its workers, after a
/// service drain.
pub fn snapshot() -> Vec<LaneSnapshot> {
    let rings: Vec<Arc<EventRing>> = REGISTRY.lock().unwrap().rings.clone();
    rings
        .iter()
        .map(|ring| {
            let head = ring.head.load(Ordering::Acquire);
            let cap = ring.slots.len() as u64;
            let n = head.min(cap);
            let mut events = Vec::with_capacity(n as usize);
            let mut last_ts = 0u64;
            for k in (head - n)..head {
                let slot = &ring.slots[(k & (cap - 1)) as usize];
                let ts = slot.ts.load(Ordering::Relaxed);
                let (kind, payload) = unpack(slot.word.load(Ordering::Relaxed));
                // Drop torn slots: invalid kind byte or a timestamp that
                // runs backwards within the lane.
                if let Some(kind) = kind {
                    if ts >= last_ts {
                        last_ts = ts;
                        events.push(TraceEvent {
                            ts_ns: ts,
                            kind,
                            payload,
                        });
                    }
                }
            }
            LaneSnapshot {
                lane: ring.lane,
                label: ring.label.lock().unwrap().clone(),
                events,
                overwritten: head - n,
            }
        })
        .collect()
}

/// Forget everything recorded so far (head reset on every lane). Only
/// meaningful while producers are quiescent — tests and bench window
/// brackets use it; the flight recorder itself never needs it.
pub fn clear() {
    let reg = REGISTRY.lock().unwrap();
    for ring in reg.rings.iter() {
        ring.head.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Chrome-trace export
// ---------------------------------------------------------------------

/// Render lane snapshots as Chrome trace-event JSON (the format
/// `chrome://tracing` and <https://ui.perfetto.dev> load): one `pid`
/// per run, one `tid` per lane, `B`/`E` duration pairs for pop →
/// complete spans, `i` instants for everything else. Timestamps are
/// microseconds with nanosecond precision (the format's native unit).
/// Timed events are emitted sorted by timestamp — the format itself
/// tolerates out-of-order events, but sorted output lets downstream
/// validators (and diff tools) treat file order as time order.
pub fn chrome_trace_json(lanes: &[LaneSnapshot]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"rsched\"}}",
    );
    // A span's B is only known to be a span once its complete arrives,
    // so events leave the per-lane walk out of time order; collect
    // (ts, json) and stable-sort. Equal timestamps keep generation
    // order, which keeps each B before its E.
    let mut timed: Vec<(u64, String)> = Vec::new();
    for lane in lanes {
        out.push(',');
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            lane.lane,
            escape_json(&lane.label),
        ));
        // One open pop span at a time per lane: the worker loop is
        // serial, so pop/complete strictly alternate. A complete whose
        // pop was overwritten by wrap-around, or a pop never completed
        // (the crash/stall case), degrades to an instant.
        let mut open_pop: Option<&TraceEvent> = None;
        for ev in &lane.events {
            match ev.kind {
                EventKind::TaskPop => {
                    if let Some(p) = open_pop.take() {
                        timed.push((p.ts_ns, instant_json(lane.lane, p)));
                    }
                    open_pop = Some(ev);
                }
                EventKind::TaskComplete => match open_pop.take() {
                    Some(p) => {
                        timed.push((
                            p.ts_ns,
                            format!(
                                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"task\",\"args\":{{\"item\":{}}}}}",
                                lane.lane,
                                ts_us(p.ts_ns),
                                p.payload,
                            ),
                        ));
                        timed.push((
                            ev.ts_ns,
                            format!(
                                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"task\"}}",
                                lane.lane,
                                ts_us(ev.ts_ns),
                            ),
                        ));
                    }
                    None => timed.push((ev.ts_ns, instant_json(lane.lane, ev))),
                },
                _ => timed.push((ev.ts_ns, instant_json(lane.lane, ev))),
            }
        }
        if let Some(p) = open_pop {
            timed.push((p.ts_ns, instant_json(lane.lane, p)));
        }
    }
    timed.sort_by_key(|(ts, _)| *ts);
    for (_, ev) in &timed {
        out.push(',');
        out.push_str(ev);
    }
    out.push_str("]}");
    out
}

/// Microseconds with three decimals (nanosecond precision), the
/// trace-event format's native `ts` unit.
fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000)
}

fn instant_json(lane: usize, ev: &TraceEvent) -> String {
    format!(
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{{\"v\":{}}}}}",
        lane,
        ts_us(ev.ts_ns),
        ev.kind.name(),
        ev.payload,
    )
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes flight-recorder snapshots to a Chrome-trace JSON file.
///
/// Construct one explicitly with a path, or let [`TraceSink::from_env`]
/// decide: it returns a sink only when tracing is [`enabled`], with the
/// path taken from `RSCHED_TRACE_OUT` (default `rsched_trace.json`).
#[derive(Clone, Debug)]
pub struct TraceSink {
    path: PathBuf,
}

impl TraceSink {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// Where [`TraceSink::export`] writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The env-configured sink, or `None` when tracing is off.
    pub fn from_env() -> Option<TraceSink> {
        if !enabled() {
            return None;
        }
        let path = std::env::var("RSCHED_TRACE_OUT").unwrap_or_else(|_| "rsched_trace.json".into());
        Some(TraceSink::new(path))
    }

    /// Snapshot every lane and (over)write the Chrome-trace file.
    /// Repeated exports are idempotent-by-latest: the file always holds
    /// the most recent flight-recorder window, which is exactly the
    /// wrap-around semantics of the rings themselves.
    pub fn export(&self) -> std::io::Result<PathBuf> {
        let json = chrome_trace_json(&snapshot());
        std::fs::write(&self.path, json)?;
        Ok(self.path.clone())
    }
}

/// Export to the env-configured path if tracing is enabled; swallow
/// (but report) I/O errors — a failed trace dump must never take down
/// the run it was observing. The runtime calls this at `run()` /
/// service-drain boundaries.
pub fn export_if_configured() {
    if let Some(sink) = TraceSink::from_env() {
        if let Err(e) = sink.export() {
            eprintln!("rsched-trace: export to {:?} failed: {e}", sink.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate and the registry are process-global; serialize the
    /// tests that mutate them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn drop_lane() {
        LANE.with(|slot| *slot.borrow_mut() = None);
    }

    #[test]
    fn kind_bytes_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
            let (k, p) = unpack(pack(kind, 0x00AB_CDEF_0123_4567));
            assert_eq!(k, Some(kind));
            assert_eq!(p, 0x00AB_CDEF_0123_4567);
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(11), None);
        // Payloads truncate to 56 bits, never bleed into the kind byte.
        let (k, p) = unpack(pack(EventKind::TaskPop, u64::MAX));
        assert_eq!(k, Some(EventKind::TaskPop));
        assert_eq!(p, PAYLOAD_MASK);
    }

    #[test]
    fn disabled_gate_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        clear();
        drop_lane();
        emit(EventKind::TaskPop, 1);
        let lanes = snapshot();
        assert!(lanes.iter().all(|l| l.events.is_empty()));
        set_enabled(false);
    }

    #[test]
    fn ring_wraps_and_keeps_last_n() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        drop_lane();
        // Force a private ring and overfill it.
        let cap = {
            let mut reg = REGISTRY.lock().unwrap();
            if reg.capacity == 0 {
                reg.capacity = ring_capacity_from_env();
            }
            reg.capacity
        };
        let extra = 37;
        for i in 0..(cap + extra) {
            emit(EventKind::TaskInject, i as u64);
        }
        let mine = LANE.with(|slot| slot.borrow().as_ref().unwrap().ring.lane);
        let lanes = snapshot();
        let lane = lanes.iter().find(|l| l.lane == mine).unwrap();
        assert_eq!(lane.events.len(), cap, "ring retains exactly capacity");
        assert_eq!(lane.overwritten, extra as u64);
        // Oldest retained event is the first survivor of the overwrite.
        assert_eq!(lane.events[0].payload, extra as u64);
        assert_eq!(lane.events[cap - 1].payload, (cap + extra - 1) as u64);
        let mut prev = 0;
        for ev in &lane.events {
            assert!(ev.ts_ns >= prev, "timestamps monotone within a lane");
            prev = ev.ts_ns;
        }
        set_enabled(false);
        drop_lane();
    }

    #[test]
    fn concurrent_threads_get_distinct_lanes() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        let barrier = std::sync::Barrier::new(4);
        let lanes: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        for i in 0..100u64 {
                            emit(EventKind::TaskPop, t * 1000 + i);
                            emit(EventKind::TaskComplete, t * 1000 + i);
                        }
                        let lane = LANE.with(|slot| slot.borrow().as_ref().unwrap().ring.lane);
                        barrier.wait(); // hold the lane until everyone recorded
                        lane
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut uniq = lanes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "concurrent threads must not share a lane");
        let snaps = snapshot();
        for lane in &lanes {
            let snap = snaps.iter().find(|l| l.lane == *lane).unwrap();
            assert_eq!(snap.events.len(), 200);
        }
        set_enabled(false);
    }

    #[test]
    fn lanes_are_reused_after_thread_exit() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        let before = REGISTRY.lock().unwrap().rings.len();
        for round in 0..8u64 {
            std::thread::spawn(move || emit(EventKind::Park, round))
                .join()
                .unwrap();
        }
        let after = REGISTRY.lock().unwrap().rings.len();
        assert!(
            after <= before + 1,
            "sequential short-lived threads must reuse one pooled lane \
             (grew {before} -> {after})"
        );
        set_enabled(false);
    }

    #[test]
    fn chrome_export_pairs_spans_and_degrades_unmatched() {
        let ev = |ts_ns, kind, payload| TraceEvent {
            ts_ns,
            kind,
            payload,
        };
        let lanes = vec![LaneSnapshot {
            lane: 3,
            label: "worker \"3\"".into(),
            events: vec![
                ev(1_000, EventKind::TaskPop, 7),
                ev(2_500, EventKind::TaskComplete, 7),
                ev(3_000, EventKind::TaskComplete, 8), // pop lost to wrap
                ev(4_000, EventKind::Park, 0),
                ev(5_000, EventKind::TaskPop, 9), // never completed
            ],
            overwritten: 2,
        }];
        let json = chrome_trace_json(&lanes);
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!((begins, ends), (1, 1), "exactly the matched span");
        assert_eq!(
            json.matches("\"ph\":\"i\"").count(),
            3,
            "orphan complete + park + orphan pop degrade to instants"
        );
        assert!(json.contains("\"ts\":1.000"), "ns-precision µs timestamps");
        assert!(json.contains("worker \\\"3\\\""), "labels are escaped");
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn sink_from_env_respects_gate() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        assert!(TraceSink::from_env().is_none());
        set_enabled(true);
        let sink = TraceSink::from_env().expect("enabled gate yields a sink");
        assert!(!sink.path().as_os_str().is_empty());
        set_enabled(false);
    }
}
