//! Relaxed FIFO queues built on the random choice of two.
//!
//! A **relaxed FIFO** may dequeue *one of the oldest* items instead of
//! necessarily the oldest. For a relaxed dequeue of item `x`, the number
//! of items still in the queue that were enqueued before `x` is the
//! **rank error** — the FIFO analogue of the priority-queue rank the
//! [`RankTracker`](crate::instrument::RankTracker) measures. Relaxation
//! buys scalability: sub-FIFOs are contended independently, and the
//! choice-of-two rule keeps the error envelope logarithmically tight in
//! the spirit of balanced allocations (Azar et al.), exactly as the
//! MultiQueue does for priorities.
//!
//! Two family members, mirroring the d-RA / d-CBO line of relaxed-FIFO
//! designs (see `relaxed-queue-simulations` and the PPoPP 2025 d-CBO
//! paper referenced in SNIPPETS.md):
//!
//! * [`DRaQueue`] — **d-RA**: `d` random sub-queue samples per
//!   operation; enqueue goes to the sampled sub-queue with the fewest
//!   live items (balanced allocation on *lengths*), dequeue takes the
//!   oldest visible head among the sampled sub-queues (items carry a
//!   global arrival stamp).
//! * [`DCboQueue`] — **d-CBO** (*choice of balanced operations*): every
//!   shard counts its completed enqueues and dequeues; enqueue goes to
//!   the sampled shard with the fewest enqueues, dequeue pops the
//!   sampled shard with the fewest dequeues. Because both counters stay
//!   balanced, shard heads age at nearly the same rate and popping the
//!   least-dequeued shard approximates global FIFO order — without any
//!   global coordination (two relaxed atomic loads per choice).
//!
//! Both are concurrent (`&self` operations taking the caller's RNG, as
//! the runtime expects) **and** implement the sequential [`RelaxedFifo`]
//! trait for simulation and instrumentation.
//!
//! # Shard backends
//!
//! The sub-queue inside each shard is pluggable through [`SubFifo`]:
//!
//! * [`MutexSub`] — the PR 1 baseline, a `Mutex<VecDeque>` per shard;
//! * [`MsQueue`](crate::lockfree::MsQueue) — lock-free Michael–Scott
//!   linked queue;
//! * [`SegRingQueue`] — lock-free
//!   segmented ring buffer, the **default** backend.
//!
//! See [`lockfree`](crate::lockfree) for the algorithms and for guidance
//! on choosing; `fifo_contention` in `rsched-bench` sweeps all of them
//! under thread contention.
//!
//! [`FifoRankTracker`] wraps any [`RelaxedFifo`] and measures empirical
//! rank errors against a shadow order, mirroring the priority-queue
//! instrumentation in [`instrument`](crate::instrument); its concurrent
//! counterpart is
//! [`ConcurrentRankEstimator`](crate::instrument::ConcurrentRankEstimator).

use crate::lockfree::SegRingQueue;
use crossbeam::epoch;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// A queue with relaxed FIFO semantics (sequential interface).
///
/// Dequeue returns *one of the oldest* items; how far from the oldest is
/// bounded by the structure's relaxation. The concurrent members of the
/// family ([`DRaQueue`], [`DCboQueue`]) additionally expose `&self`
/// operations for the runtime; this trait is the sequential-model
/// surface shared by every member, used for simulation and
/// instrumentation.
pub trait RelaxedFifo<T> {
    /// Append `item` (relaxed tail position).
    fn enqueue(&mut self, item: T);

    /// Remove one of the oldest items, or `None` if empty.
    fn dequeue(&mut self) -> Option<T>;

    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` if no items are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of internal sub-queues — the scale parameter of the rank
    /// error envelope (1 = exact FIFO).
    fn subqueues(&self) -> usize;
}

// ---------------------------------------------------------------------
// Shard backends
// ---------------------------------------------------------------------

/// A per-operation token that is either borrowed from a live
/// [`PinSession`] or freshly created — so workers holding a session pay
/// no epoch entry at all per operation.
pub enum TokRef<'a, G> {
    /// Borrowed from the session's long-lived guard.
    Borrowed(&'a G),
    /// Freshly created for this operation.
    Owned(G),
}

impl<G> std::ops::Deref for TokRef<'_, G> {
    type Target = G;

    fn deref(&self) -> &G {
        match self {
            TokRef::Borrowed(g) => g,
            TokRef::Owned(g) => g,
        }
    }
}

/// Result of a non-blocking pop attempt on a [`SubFifo`].
#[derive(Debug)]
pub enum TryPop<T> {
    /// Got the sub-queue's head element and its arrival stamp.
    Item((u64, T)),
    /// The sub-queue was observed empty (a hint under concurrency).
    Empty,
    /// The sub-queue is temporarily unavailable (a lock-based backend's
    /// lock is held). Lock-free backends never report this.
    Contended,
}

/// One concurrent sub-queue (shard) of the relaxed FIFO family.
///
/// Elements carry a `u64` arrival stamp alongside the payload so that
/// d-RA's oldest-head dequeue rule can peek stamps without touching the
/// (racily moved-out) payload. d-CBO passes `0` — its policy never reads
/// stamps.
pub trait SubFifo<T>: Send + Sync {
    /// `true` when the backend's operations pin the epoch-reclamation
    /// scheme; lets [`PinSession`] and the runtime know whether holding
    /// an amortized pin is worthwhile.
    const NEEDS_EPOCH: bool = false;

    /// Per-operation protection token: an epoch guard for lock-free
    /// backends, zero-sized for lock-based ones. The composing queue
    /// creates **one** token per relaxed-FIFO operation and threads it
    /// through every sample, peek and pop attempt, so backends never
    /// re-enter the epoch scheme per sub-call.
    type Token;

    /// Produce a token for one composed operation.
    fn token() -> Self::Token;

    /// Borrow the token from a live [`PinSession`] when possible,
    /// falling back to a fresh one.
    fn borrow_token(session: &PinSession) -> TokRef<'_, Self::Token>;

    /// An empty sub-queue.
    fn new() -> Self;

    /// Append `item` stamped with `seq`.
    fn push(&self, seq: u64, item: T, tok: &Self::Token);

    /// Non-blocking pop attempt; never waits for another thread.
    fn try_pop(&self, tok: &Self::Token) -> TryPop<T>;

    /// Pop, waiting for a lock if the backend has one (lock-free
    /// backends are identical to [`try_pop`](SubFifo::try_pop)).
    fn pop_wait(&self, tok: &Self::Token) -> Option<(u64, T)>;

    /// The arrival stamp of the head element, if observable right now
    /// (`None` when empty, unavailable, or not yet published).
    fn head_seq(&self, tok: &Self::Token) -> Option<u64>;
}

/// The PR 1 baseline backend: a mutex around a `VecDeque`.
///
/// Fastest under zero contention (an uncontended lock is cheaper than an
/// epoch pin), worst under oversubscription: a preempted lock holder
/// stalls every other thread on the shard.
#[derive(Debug, Default)]
pub struct MutexSub<T> {
    fifo: Mutex<VecDeque<(u64, T)>>,
}

impl<T: Send> SubFifo<T> for MutexSub<T> {
    type Token = ();

    fn token() {}

    fn borrow_token(_session: &PinSession) -> TokRef<'_, ()> {
        TokRef::Owned(())
    }

    fn new() -> Self {
        MutexSub {
            fifo: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, seq: u64, item: T, _tok: &()) {
        self.fifo.lock().push_back((seq, item));
    }

    fn try_pop(&self, _tok: &()) -> TryPop<T> {
        match self.fifo.try_lock() {
            None => TryPop::Contended,
            Some(mut fifo) => match fifo.pop_front() {
                Some(pair) => TryPop::Item(pair),
                None => TryPop::Empty,
            },
        }
    }

    fn pop_wait(&self, _tok: &()) -> Option<(u64, T)> {
        self.fifo.lock().pop_front()
    }

    fn head_seq(&self, _tok: &()) -> Option<u64> {
        self.fifo
            .try_lock()
            .and_then(|f| f.front().map(|&(s, _)| s))
    }
}

// ---------------------------------------------------------------------
// Per-thread shard-picker RNG
// ---------------------------------------------------------------------

/// Seed source for per-thread picker RNGs (distinct odd increments give
/// every thread a distinct splitmix-expanded stream).
static PICKER_SEED: AtomicU64 = AtomicU64::new(0xD1CE_5EED);

thread_local! {
    static PICKER_RNG: RefCell<SmallRng> = RefCell::new(SmallRng::seed_from_u64(
        PICKER_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
    ));
}

/// Run `f` with this thread's shard-picker RNG.
///
/// The `*_local` convenience operations on [`DRaQueue`] / [`DCboQueue`]
/// use this so callers without their own RNG stream never serialize on a
/// shared generator (PR 1 kept a `Mutex<SmallRng>` inside the queue for
/// that — a bottleneck as soon as two threads picked shards at once).
pub fn with_thread_picker<R>(f: impl FnOnce(&mut SmallRng) -> R) -> R {
    PICKER_RNG.with(|rng| f(&mut rng.borrow_mut()))
}

// ---------------------------------------------------------------------
// Shared shard machinery
// ---------------------------------------------------------------------

/// Largest supported `d` for [`DRaQueue`] / [`DCboQueue`] (candidate
/// buffers are stack-allocated at this size).
const MAX_CHOICES: usize = 8;

/// One shard: a sub-queue plus its completed operation counters.
/// Counters are read before popping/pushing (the choice is a heuristic;
/// slight staleness only costs rank error, never correctness).
#[derive(Debug)]
struct Shard<S> {
    sub: S,
    enqueues: AtomicU64,
    dequeues: AtomicU64,
}

impl<S> Shard<S> {
    /// Completed enqueues minus completed dequeues — the approximate
    /// live length (exact when quiescent).
    fn approx_len(&self) -> u64 {
        self.enqueues
            .load(Ordering::Relaxed)
            .saturating_sub(self.dequeues.load(Ordering::Relaxed))
    }
}

fn new_shards<T, S: SubFifo<T>>(n: usize) -> Box<[CachePadded<Shard<S>>]> {
    (0..n)
        .map(|_| {
            CachePadded::new(Shard {
                sub: S::new(),
                enqueues: AtomicU64::new(0),
                dequeues: AtomicU64::new(0),
            })
        })
        .collect()
}

/// How many operations a [`PinSession`] batches under one epoch pin
/// before repinning (bounding how long reclamation can be held up).
const REPIN_EVERY: u32 = 32;

/// An amortized epoch pin for a batch of queue operations.
///
/// Entering the epoch scheme costs a fence; a worker doing millions of
/// operations should not pay it per operation. A session (from
/// [`DRaQueue::pin_session`] / [`DCboQueue::pin_session`]) holds one pin
/// so the per-operation pins inside the queue collapse to counter bumps,
/// and [`tick`](Self::tick) repins every `REPIN_EVERY` (32) calls so the
/// global epoch — and therefore memory reclamation — keeps advancing.
/// For backends that don't use epochs (e.g. [`MutexSub`]) the session is
/// an inert no-op.
#[derive(Debug, Default)]
pub struct PinSession {
    guard: Option<epoch::Guard>,
    ops: u32,
}

impl PinSession {
    /// A session that pins only if `needs_epoch`.
    pub fn new(needs_epoch: bool) -> Self {
        PinSession {
            guard: needs_epoch.then(epoch::pin),
            ops: 0,
        }
    }

    /// An inert session (for schedulers without epoch reclamation).
    pub fn none() -> Self {
        Self::default()
    }

    /// The held epoch guard, if this session is live. Queue operations
    /// called through the `*_in` variants borrow it instead of pinning.
    pub fn guard(&self) -> Option<&epoch::Guard> {
        self.guard.as_ref()
    }

    /// Count one batched operation, repinning when the batch is full.
    /// Call once per queue operation performed under the session.
    pub fn tick(&mut self) {
        if let Some(guard) = &mut self.guard {
            self.ops += 1;
            if self.ops >= REPIN_EVERY {
                self.ops = 0;
                guard.repin();
            }
        }
    }
}

/// Fill `buf[..d]` with shard samples; with affinity, the home shard
/// participates in the first round's choice and later rounds go fully
/// random to escape an empty home.
fn fill_candidates<R: Rng>(
    q: usize,
    d: usize,
    home: Option<usize>,
    round: usize,
    rng: &mut R,
    buf: &mut [usize; MAX_CHOICES],
) {
    for (i, c) in buf.iter_mut().take(d).enumerate() {
        *c = match (home, i, round) {
            (Some(h), 0, 0) => h,
            _ => rng.gen_range(0..q),
        };
    }
}

// ---------------------------------------------------------------------
// d-RA
// ---------------------------------------------------------------------

/// d-RA relaxed FIFO: `d` random choices over sub-FIFO shards.
///
/// Enqueue samples `d` shards uniformly and appends to the one with the
/// fewest live items; dequeue samples `d` shards and removes the *oldest
/// visible head* among them (items carry a global arrival stamp). With
/// `d = 1` both rules degenerate to uniform random placement/removal;
/// with one sub-queue the structure is an exact FIFO.
///
/// Concurrent operations take the caller's RNG (`&self`); the
/// [`RelaxedFifo`] impl provides the sequential-model interface. The
/// shard backend defaults to the lock-free
/// [`SegRingQueue`]; see [`SubFifo`].
///
/// # Examples
///
/// ```
/// use rsched_queues::fifo::DRaQueue;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let q = DRaQueue::choice_of_two(8, 42);
/// let mut rng = SmallRng::seed_from_u64(1);
/// for i in 0..100 {
///     q.enqueue(i, &mut rng);
/// }
/// let first = q.dequeue(&mut rng).unwrap();
/// // Relaxed: one of the oldest items, not necessarily item 0.
/// assert!(first < 100);
/// assert_eq!(q.len(), 99);
/// ```
pub struct DRaQueue<T, S = SegRingQueue<T>> {
    shards: Box<[CachePadded<Shard<S>>]>,
    /// Global arrival stamps (unique, monotone modulo fetch order).
    arrivals: AtomicU64,
    d: usize,
    /// RNG for the sequential [`RelaxedFifo`] interface only; the
    /// concurrent operations take the caller's RNG.
    seq_rng: SmallRng,
    _item: PhantomData<fn() -> T>,
}

impl<T: Send, S: SubFifo<T>> DRaQueue<T, S> {
    /// `subqueues` shards of backend `S` with `d` choices per operation
    /// (`1 ..= MAX_CHOICES`).
    pub fn with_backend(subqueues: usize, d: usize, seed: u64) -> Self {
        assert!(subqueues > 0, "d-RA needs at least one sub-queue");
        assert!(
            (1..=MAX_CHOICES).contains(&d),
            "d-RA supports 1..={MAX_CHOICES} choices, got {d}"
        );
        Self {
            shards: new_shards::<T, S>(subqueues),
            arrivals: AtomicU64::new(0),
            d,
            seq_rng: SmallRng::seed_from_u64(seed),
            _item: PhantomData,
        }
    }

    /// The number of choices `d`.
    pub fn choices(&self) -> usize {
        self.d
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of stored items, derived from the per-shard operation
    /// counters — exact when quiescent, an approximation mid-flight, and
    /// free of any shared hot-path counter.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.approx_len() as usize).sum()
    }

    /// `true` if empty (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `item` to the sampled shard with the fewest live items.
    pub fn enqueue<R: Rng>(&self, item: T, rng: &mut R) {
        self.enqueue_tok(item, rng, &S::token());
    }

    /// [`enqueue`](Self::enqueue) borrowing `session`'s pin (no epoch
    /// entry per operation for lock-free backends).
    pub fn enqueue_in<R: Rng>(&self, item: T, rng: &mut R, session: &PinSession) {
        self.enqueue_tok(item, rng, &S::borrow_token(session));
    }

    fn enqueue_tok<R: Rng>(&self, item: T, rng: &mut R, tok: &S::Token) {
        let q = self.shards.len();
        let mut best = rng.gen_range(0..q);
        let mut best_len = self.shards[best].approx_len();
        for _ in 1..self.d {
            let c = rng.gen_range(0..q);
            let l = self.shards[c].approx_len();
            if l < best_len {
                best = c;
                best_len = l;
            }
        }
        let seq = self.arrivals.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[best];
        shard.sub.push(seq, item, tok);
        shard.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop the oldest visible head among `d` sampled shards; `None` only
    /// after a full sweep found every shard empty (a hint, not a
    /// linearizable emptiness check — callers own termination detection).
    pub fn dequeue<R: Rng>(&self, rng: &mut R) -> Option<T> {
        self.dequeue_from(usize::MAX, rng).map(|(item, _)| item)
    }

    /// [`enqueue`](Self::enqueue) with this thread's picker RNG.
    pub fn enqueue_local(&self, item: T) {
        with_thread_picker(|rng| self.enqueue(item, rng));
    }

    /// [`dequeue`](Self::dequeue) with this thread's picker RNG.
    pub fn dequeue_local(&self) -> Option<T> {
        with_thread_picker(|rng| self.dequeue(rng))
    }

    /// [`dequeue_from`](Self::dequeue_from) with this thread's picker RNG.
    pub fn dequeue_from_local(&self, home: usize) -> Option<(T, bool)> {
        with_thread_picker(|rng| self.dequeue_from(home, rng))
    }

    /// An amortized [`PinSession`] for a batch of operations on this
    /// queue (inert when the backend doesn't use epoch reclamation).
    pub fn pin_session(&self) -> PinSession {
        PinSession::new(S::NEEDS_EPOCH)
    }

    /// Worker-affine dequeue for the runtime: shard `home % shards` is
    /// always one of the first round's candidates, so an uncontended
    /// worker keeps draining its own shard; among candidates the oldest
    /// visible head wins. The returned flag is `true` when the element
    /// came from a foreign shard — a steal. Pass `usize::MAX` for no
    /// affinity.
    pub fn dequeue_from<R: Rng>(&self, home: usize, rng: &mut R) -> Option<(T, bool)> {
        self.dequeue_from_tok(home, rng, &S::token())
    }

    /// [`dequeue_from`](Self::dequeue_from) borrowing `session`'s pin
    /// (no epoch entry per operation for lock-free backends).
    pub fn dequeue_from_in<R: Rng>(
        &self,
        home: usize,
        rng: &mut R,
        session: &PinSession,
    ) -> Option<(T, bool)> {
        self.dequeue_from_tok(home, rng, &S::borrow_token(session))
    }

    fn dequeue_from_tok<R: Rng>(
        &self,
        home: usize,
        rng: &mut R,
        tok: &S::Token,
    ) -> Option<(T, bool)> {
        let q = self.shards.len();
        let home = (home != usize::MAX).then(|| home % q);
        let d = self.d;
        for round in 0..(2 * q + 4) {
            let mut cand = [0usize; MAX_CHOICES];
            fill_candidates(q, d, home, round, rng, &mut cand);
            // Oldest visible head first; shards with no visible head
            // (empty, or a contended mutex backend) are skipped.
            let mut heads = [(u64::MAX, usize::MAX); MAX_CHOICES];
            let mut n = 0;
            for &c in &cand[..d] {
                if let Some(s) = self.shards[c].sub.head_seq(tok) {
                    heads[n] = (s, c);
                    n += 1;
                }
            }
            heads[..n].sort_unstable();
            let mut tried = usize::MAX;
            for &(_, c) in &heads[..n] {
                if c == tried {
                    continue;
                }
                tried = c;
                if let TryPop::Item((_, item)) = self.shards[c].sub.try_pop(tok) {
                    self.finish_pop(c);
                    return Some((item, home.is_some_and(|h| h != c)));
                }
            }
            if self.is_empty() {
                break;
            }
        }
        // Oldest-head fallback over *all* shards: preserves the
        // sequential guarantee that a non-empty queue never reports
        // empty, and keeps the error small at drain tails.
        for _ in 0..2 {
            let oldest = (0..q)
                .filter_map(|c| self.shards[c].sub.head_seq(tok).map(|s| (s, c)))
                .min();
            let Some((_, c)) = oldest else { break };
            if let Some((_, item)) = self.shards[c].sub.pop_wait(tok) {
                self.finish_pop(c);
                return Some((item, home.is_some_and(|h| h != c)));
            }
        }
        // Final sweep, rotated from a per-thread offset (home shard if
        // affine, else a random start) so convoys don't all line up on
        // shard 0.
        let start = home.unwrap_or_else(|| rng.gen_range(0..q));
        for k in 0..q {
            let c = (start + k) % q;
            if let Some((_, item)) = self.shards[c].sub.pop_wait(tok) {
                self.finish_pop(c);
                return Some((item, home.is_some_and(|h| h != c)));
            }
        }
        None
    }

    fn finish_pop(&self, c: usize) {
        self.shards[c].dequeues.fetch_add(1, Ordering::Relaxed);
    }
}

impl<T: Send> DRaQueue<T> {
    /// `subqueues` sub-FIFOs with `d` choices per operation, on the
    /// default lock-free segmented-ring backend.
    pub fn new(subqueues: usize, d: usize, seed: u64) -> Self {
        Self::with_backend(subqueues, d, seed)
    }

    /// The classic two-choice configuration.
    pub fn choice_of_two(subqueues: usize, seed: u64) -> Self {
        Self::new(subqueues, 2, seed)
    }
}

impl<T, S: SubFifo<T>> std::fmt::Debug for DRaQueue<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DRaQueue")
            .field("shards", &self.shards.len())
            .field("d", &self.d)
            .field(
                "len",
                &self.shards.iter().map(|s| s.approx_len()).sum::<u64>(),
            )
            .finish()
    }
}

impl<T: Send, S: SubFifo<T>> RelaxedFifo<T> for DRaQueue<T, S> {
    fn enqueue(&mut self, item: T) {
        // Exclusive access: run the concurrent op on a moved-out copy of
        // the sequential RNG (cloning 4 words beats any lock).
        let mut rng = self.seq_rng.clone();
        DRaQueue::enqueue(&*self, item, &mut rng);
        self.seq_rng = rng;
    }

    fn dequeue(&mut self) -> Option<T> {
        let mut rng = self.seq_rng.clone();
        let out = DRaQueue::dequeue(&*self, &mut rng);
        self.seq_rng = rng;
        out
    }

    fn len(&self) -> usize {
        DRaQueue::len(self)
    }

    fn subqueues(&self) -> usize {
        self.num_shards()
    }
}

// ---------------------------------------------------------------------
// d-CBO
// ---------------------------------------------------------------------

/// Concurrent d-CBO relaxed FIFO: choice of two by balanced operation
/// counts over sub-FIFO shards.
///
/// `enqueue` samples `d` shards and appends to the one with the fewest
/// *completed enqueues*; `dequeue` samples `d` shards and pops the one
/// with the fewest *completed dequeues* (skipping empty or contended
/// shards). `None` is returned only after a full sweep found every shard
/// empty — like the workspace's other concurrent queues this is a hint,
/// not a linearizable emptiness check, and callers own termination
/// detection.
///
/// The shard backend defaults to the lock-free
/// [`SegRingQueue`]; see [`SubFifo`] and
/// the [`DCboMutexQueue`] / [`DCboMsQueue`] aliases.
///
/// # Examples
///
/// ```
/// use rsched_queues::fifo::DCboQueue;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let q = DCboQueue::new(8, 1);
/// let mut rng = SmallRng::seed_from_u64(9);
/// for i in 0..100u64 {
///     q.enqueue(i, &mut rng);
/// }
/// assert_eq!(q.len(), 100);
/// let mut popped = Vec::new();
/// while let Some(v) = q.dequeue(&mut rng) {
///     popped.push(v);
/// }
/// popped.sort_unstable();
/// assert_eq!(popped, (0..100).collect::<Vec<_>>());
/// ```
pub struct DCboQueue<T, S = SegRingQueue<T>> {
    shards: Box<[CachePadded<Shard<S>>]>,
    d: usize,
    /// RNG for the sequential [`RelaxedFifo`] interface only; the
    /// concurrent operations take the caller's RNG.
    seq_rng: SmallRng,
    _item: PhantomData<fn() -> T>,
}

impl<T: Send, S: SubFifo<T>> DCboQueue<T, S> {
    /// Largest supported choice count `d` (the dequeue candidate buffer
    /// is stack-allocated at this size).
    pub const MAX_CHOICES: usize = MAX_CHOICES;

    /// `shards` sub-FIFOs of backend `S` with `d` choices per operation
    /// (`1 ..= MAX_CHOICES`).
    pub fn with_backend(shards: usize, d: usize, seed: u64) -> Self {
        assert!(shards > 0, "d-CBO needs at least one shard");
        assert!(
            (1..=Self::MAX_CHOICES).contains(&d),
            "d-CBO supports 1..={} choices, got {d}",
            Self::MAX_CHOICES
        );
        Self {
            shards: new_shards::<T, S>(shards),
            d,
            seq_rng: SmallRng::seed_from_u64(seed ^ 0xD_CB0),
            _item: PhantomData,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of stored items, derived from the per-shard operation
    /// counters — exact when quiescent, an approximation mid-flight, and
    /// free of any shared hot-path counter.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.approx_len() as usize).sum()
    }

    /// `true` if empty (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `item` to the sampled shard with the fewest completed
    /// enqueues.
    pub fn enqueue<R: Rng>(&self, item: T, rng: &mut R) {
        self.enqueue_tok(item, rng, &S::token());
    }

    /// [`enqueue`](Self::enqueue) borrowing `session`'s pin (no epoch
    /// entry per operation for lock-free backends).
    pub fn enqueue_in<R: Rng>(&self, item: T, rng: &mut R, session: &PinSession) {
        self.enqueue_tok(item, rng, &S::borrow_token(session));
    }

    fn enqueue_tok<R: Rng>(&self, item: T, rng: &mut R, tok: &S::Token) {
        let q = self.shards.len();
        let mut best = rng.gen_range(0..q);
        for _ in 1..self.d {
            let c = rng.gen_range(0..q);
            if self.shards[c].enqueues.load(Ordering::Relaxed)
                < self.shards[best].enqueues.load(Ordering::Relaxed)
            {
                best = c;
            }
        }
        let shard = &self.shards[best];
        // d-CBO never reads stamps; the balanced counters are the order.
        shard.sub.push(0, item, tok);
        shard.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop from the sampled shard with the fewest completed dequeues;
    /// `None` only after a full sweep found every shard empty.
    pub fn dequeue<R: Rng>(&self, rng: &mut R) -> Option<T> {
        self.dequeue_from(usize::MAX, rng).map(|(item, _)| item)
    }

    /// [`enqueue`](Self::enqueue) with this thread's picker RNG.
    pub fn enqueue_local(&self, item: T) {
        with_thread_picker(|rng| self.enqueue(item, rng));
    }

    /// [`dequeue`](Self::dequeue) with this thread's picker RNG.
    pub fn dequeue_local(&self) -> Option<T> {
        with_thread_picker(|rng| self.dequeue(rng))
    }

    /// [`dequeue_from`](Self::dequeue_from) with this thread's picker RNG.
    pub fn dequeue_from_local(&self, home: usize) -> Option<(T, bool)> {
        with_thread_picker(|rng| self.dequeue_from(home, rng))
    }

    /// An amortized [`PinSession`] for a batch of operations on this
    /// queue (inert when the backend doesn't use epoch reclamation).
    pub fn pin_session(&self) -> PinSession {
        PinSession::new(S::NEEDS_EPOCH)
    }

    /// Worker-affine dequeue for the runtime: shard `home % shards` is
    /// always one of the candidates, so an uncontended worker keeps
    /// draining its own shard; the other `d - 1` samples are uniform and
    /// win only when their shard is *behind* on dequeues (its heads are
    /// older). The returned flag is `true` when the element came from a
    /// foreign shard — a steal. Pass `usize::MAX` for no affinity.
    pub fn dequeue_from<R: Rng>(&self, home: usize, rng: &mut R) -> Option<(T, bool)> {
        self.dequeue_from_tok(home, rng, &S::token())
    }

    /// [`dequeue_from`](Self::dequeue_from) borrowing `session`'s pin
    /// (no epoch entry per operation for lock-free backends).
    pub fn dequeue_from_in<R: Rng>(
        &self,
        home: usize,
        rng: &mut R,
        session: &PinSession,
    ) -> Option<(T, bool)> {
        self.dequeue_from_tok(home, rng, &S::borrow_token(session))
    }

    fn dequeue_from_tok<R: Rng>(
        &self,
        home: usize,
        rng: &mut R,
        tok: &S::Token,
    ) -> Option<(T, bool)> {
        let q = self.shards.len();
        let home = (home != usize::MAX).then(|| home % q);
        let d = self.d;
        // Optimistic choice-of-d rounds with non-blocking pops.
        for round in 0..(2 * q + 4) {
            let mut cand = [0usize; MAX_CHOICES];
            fill_candidates(q, d, home, round, rng, &mut cand);
            let cand = &mut cand[..d];
            cand.sort_by_key(|&c| self.shards[c].dequeues.load(Ordering::Relaxed));
            let mut tried = usize::MAX;
            for &c in cand.iter() {
                if c == tried {
                    continue;
                }
                tried = c;
                if let TryPop::Item((_, item)) = self.shards[c].sub.try_pop(tok) {
                    self.finish_pop(c);
                    return Some((item, home.is_some_and(|h| h != c)));
                }
            }
            if self.is_empty() {
                break;
            }
        }
        // Fallback sweep: visit every shard once, waiting on locks.
        // Rotated from a per-thread offset (home shard if affine, else a
        // random start) so threads that fall back together fan out over
        // the shards instead of convoying onto shard 0.
        let start = home.unwrap_or_else(|| rng.gen_range(0..q));
        for k in 0..q {
            let c = (start + k) % q;
            if let Some((_, item)) = self.shards[c].sub.pop_wait(tok) {
                self.finish_pop(c);
                return Some((item, home.is_some_and(|h| h != c)));
            }
        }
        None
    }

    fn finish_pop(&self, c: usize) {
        self.shards[c].dequeues.fetch_add(1, Ordering::Relaxed);
    }
}

impl<T: Send> DCboQueue<T> {
    /// `shards` sub-FIFOs with the classic two choices per operation, on
    /// the default lock-free segmented-ring backend.
    pub fn new(shards: usize, seed: u64) -> Self {
        Self::with_backend(shards, 2, seed)
    }

    /// `shards` sub-FIFOs with `d` choices per operation
    /// (`1 ..= MAX_CHOICES`), on the default backend.
    pub fn with_choice(shards: usize, d: usize, seed: u64) -> Self {
        Self::with_backend(shards, d, seed)
    }
}

impl<T, S: SubFifo<T>> std::fmt::Debug for DCboQueue<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DCboQueue")
            .field("shards", &self.shards.len())
            .field("d", &self.d)
            .field(
                "len",
                &self.shards.iter().map(|s| s.approx_len()).sum::<u64>(),
            )
            .finish()
    }
}

impl<T: Send, S: SubFifo<T>> RelaxedFifo<T> for DCboQueue<T, S> {
    fn enqueue(&mut self, item: T) {
        let mut rng = self.seq_rng.clone();
        DCboQueue::enqueue(&*self, item, &mut rng);
        self.seq_rng = rng;
    }

    fn dequeue(&mut self) -> Option<T> {
        let mut rng = self.seq_rng.clone();
        let out = DCboQueue::dequeue(&*self, &mut rng);
        self.seq_rng = rng;
        out
    }

    fn len(&self) -> usize {
        DCboQueue::len(self)
    }

    fn subqueues(&self) -> usize {
        self.num_shards()
    }
}

// ---------------------------------------------------------------------
// Backend aliases
// ---------------------------------------------------------------------

/// d-RA over mutex-guarded shards (the PR 1 baseline).
pub type DRaMutexQueue<T> = DRaQueue<T, MutexSub<T>>;
/// d-RA over lock-free Michael–Scott shards.
pub type DRaMsQueue<T> = DRaQueue<T, crate::lockfree::MsQueue<T>>;
/// d-RA over lock-free segmented-ring shards (the default).
pub type DRaSegQueue<T> = DRaQueue<T, SegRingQueue<T>>;
/// d-CBO over mutex-guarded shards (the PR 1 baseline).
pub type DCboMutexQueue<T> = DCboQueue<T, MutexSub<T>>;
/// d-CBO over lock-free Michael–Scott shards.
pub type DCboMsQueue<T> = DCboQueue<T, crate::lockfree::MsQueue<T>>;
/// d-CBO over lock-free segmented-ring shards (the default).
pub type DCboSegQueue<T> = DCboQueue<T, SegRingQueue<T>>;

// ---------------------------------------------------------------------
// Rank-error instrumentation (sequential)
// ---------------------------------------------------------------------

/// Aggregated FIFO rank-error statistics.
#[derive(Clone, Debug, Default)]
pub struct FifoRankStats {
    /// Number of successful dequeues measured.
    pub dequeues: u64,
    /// Largest observed rank error (0 = exact FIFO).
    pub max_error: u64,
    /// Sum of observed rank errors (for the mean).
    pub sum_error: u128,
    /// `hist[e]` = dequeues with rank error `e`; errors beyond the
    /// histogram length land in the last bucket.
    pub hist: Vec<u64>,
}

impl FifoRankStats {
    const HIST_BUCKETS: usize = 1024;

    /// Mean rank error (0.0 = always exact).
    pub fn mean_error(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.sum_error as f64 / self.dequeues as f64
        }
    }

    /// Fraction of dequeues that returned the exact oldest item.
    pub fn exact_fraction(&self) -> f64 {
        if self.dequeues == 0 {
            return 0.0;
        }
        self.hist.first().copied().unwrap_or(0) as f64 / self.dequeues as f64
    }

    /// The `q`-quantile (e.g. `0.99`) of the rank-error distribution.
    pub fn error_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        let target = (self.dequeues as f64 * q).ceil() as u64;
        let mut acc = 0u64;
        for (e, &c) in self.hist.iter().enumerate() {
            acc += c;
            if acc >= target {
                return e as u64;
            }
        }
        self.max_error
    }

    pub(crate) fn record(&mut self, error: u64) {
        if self.hist.is_empty() {
            self.hist = vec![0; Self::HIST_BUCKETS];
        }
        self.dequeues += 1;
        self.max_error = self.max_error.max(error);
        self.sum_error += error as u128;
        self.hist[(error as usize).min(Self::HIST_BUCKETS - 1)] += 1;
    }
}

/// A [`RelaxedFifo`] decorator measuring empirical rank errors.
///
/// Items are stamped with a global arrival number on enqueue; on dequeue
/// the error is the count of still-queued items with smaller stamps —
/// the definition from the relaxed-FIFO literature ("the number of items
/// currently in the queue which were inserted before x"). For
/// measurement under real thread contention use
/// [`ConcurrentRankEstimator`](crate::instrument::ConcurrentRankEstimator).
///
/// # Examples
///
/// ```
/// use rsched_queues::fifo::{DRaQueue, FifoRankTracker, RelaxedFifo};
///
/// let mut q = FifoRankTracker::new(DRaQueue::choice_of_two(4, 7));
/// for i in 0..1000 {
///     q.enqueue(i);
/// }
/// while q.dequeue().is_some() {}
/// let s = q.stats();
/// assert_eq!(s.dequeues, 1000);
/// assert!(s.mean_error() < 4.0 * 4.0, "choice-of-two keeps errors near q");
/// ```
#[derive(Debug)]
pub struct FifoRankTracker<T, Q: RelaxedFifo<(u64, T)>> {
    inner: Q,
    next: u64,
    live: BTreeSet<u64>,
    stats: FifoRankStats,
    _item: std::marker::PhantomData<T>,
}

impl<T, Q: RelaxedFifo<(u64, T)>> FifoRankTracker<T, Q> {
    /// Wrap `inner`; the tracker starts empty, so wrap before filling.
    pub fn new(inner: Q) -> Self {
        assert!(inner.is_empty(), "wrap the queue before filling it");
        Self {
            inner,
            next: 0,
            live: BTreeSet::new(),
            stats: FifoRankStats::default(),
            _item: std::marker::PhantomData,
        }
    }

    /// The collected statistics so far.
    pub fn stats(&self) -> &FifoRankStats {
        &self.stats
    }

    /// Consume the tracker, returning the inner queue and the statistics.
    pub fn into_parts(self) -> (Q, FifoRankStats) {
        (self.inner, self.stats)
    }
}

impl<T, Q: RelaxedFifo<(u64, T)>> RelaxedFifo<T> for FifoRankTracker<T, Q> {
    fn enqueue(&mut self, item: T) {
        let seq = self.next;
        self.next += 1;
        self.live.insert(seq);
        self.inner.enqueue((seq, item));
    }

    fn dequeue(&mut self) -> Option<T> {
        let (seq, item) = self.inner.dequeue()?;
        let error = self.live.range(..seq).count() as u64;
        let removed = self.live.remove(&seq);
        debug_assert!(removed, "dequeued an item the shadow does not hold");
        self.stats.record(error);
        Some(item)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn subqueues(&self) -> usize {
        self.inner.subqueues()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockfree::MsQueue;

    fn drain<T, Q: RelaxedFifo<T>>(q: &mut Q) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = q.dequeue() {
            out.push(v);
        }
        out
    }

    #[test]
    fn single_subqueue_is_exact_fifo() {
        let mut q = DRaQueue::choice_of_two(1, 3);
        for i in 0..500 {
            RelaxedFifo::enqueue(&mut q, i);
        }
        assert_eq!(drain(&mut q), (0..500).collect::<Vec<_>>());

        let mut q = FifoRankTracker::new(DRaQueue::choice_of_two(1, 3));
        for i in 0..500 {
            q.enqueue(i);
        }
        drain(&mut q);
        assert_eq!(q.stats().max_error, 0, "one sub-queue is exact");
        assert_eq!(q.stats().exact_fraction(), 1.0);
    }

    #[test]
    fn single_subqueue_exact_on_every_backend() {
        fn check<S: SubFifo<i32>>() {
            let mut q: DRaQueue<i32, S> = DRaQueue::with_backend(1, 2, 3);
            for i in 0..200 {
                RelaxedFifo::enqueue(&mut q, i);
            }
            assert_eq!(drain(&mut q), (0..200).collect::<Vec<_>>());
            let mut q: DCboQueue<i32, S> = DCboQueue::with_backend(1, 2, 3);
            for i in 0..200 {
                RelaxedFifo::enqueue(&mut q, i);
            }
            assert_eq!(drain(&mut q), (0..200).collect::<Vec<_>>());
        }
        check::<MutexSub<i32>>();
        check::<MsQueue<i32>>();
        check::<SegRingQueue<i32>>();
    }

    #[test]
    fn dra_conserves_items_under_mixed_ops() {
        let mut q = DRaQueue::new(8, 2, 11);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut pushed = 0u64;
        let mut got = Vec::new();
        for _ in 0..10_000 {
            if rng.gen_range(0..3) > 0 {
                RelaxedFifo::enqueue(&mut q, pushed);
                pushed += 1;
            } else if let Some(v) = RelaxedFifo::dequeue(&mut q) {
                got.push(v);
            }
        }
        got.extend(drain(&mut q));
        got.sort_unstable();
        assert_eq!(got, (0..pushed).collect::<Vec<_>>());
    }

    #[test]
    fn backend_matrix_conserves_items_under_mixed_ops() {
        fn check<S: SubFifo<u64>>(name: &str) {
            let mut dra: DRaQueue<u64, S> = DRaQueue::with_backend(6, 2, 11);
            let mut dcbo: DCboQueue<u64, S> = DCboQueue::with_backend(6, 2, 11);
            let mut rng = SmallRng::seed_from_u64(5);
            let mut pushed = 0u64;
            let mut got_dra = Vec::new();
            let mut got_dcbo = Vec::new();
            for _ in 0..5_000 {
                if rng.gen_range(0..3) > 0 {
                    RelaxedFifo::enqueue(&mut dra, pushed);
                    RelaxedFifo::enqueue(&mut dcbo, pushed);
                    pushed += 1;
                } else {
                    if let Some(v) = RelaxedFifo::dequeue(&mut dra) {
                        got_dra.push(v);
                    }
                    if let Some(v) = RelaxedFifo::dequeue(&mut dcbo) {
                        got_dcbo.push(v);
                    }
                }
            }
            got_dra.extend(drain(&mut dra));
            got_dcbo.extend(drain(&mut dcbo));
            got_dra.sort_unstable();
            got_dcbo.sort_unstable();
            let want: Vec<u64> = (0..pushed).collect();
            assert_eq!(got_dra, want, "{name}: d-RA lost or duplicated items");
            assert_eq!(got_dcbo, want, "{name}: d-CBO lost or duplicated items");
        }
        check::<MutexSub<u64>>("mutex");
        check::<MsQueue<u64>>("ms");
        check::<SegRingQueue<u64>>("segring");
    }

    #[test]
    fn choice_of_two_beats_random_placement() {
        // d = 2 should give a substantially smaller mean rank error than
        // d = 1 (pure random) on the same workload shape.
        let mean_for = |d: usize| {
            let mut q = FifoRankTracker::new(DRaQueue::new(16, d, 77));
            for i in 0..20_000 {
                q.enqueue(i);
            }
            while q.dequeue().is_some() {}
            q.stats().mean_error()
        };
        let random = mean_for(1);
        let two = mean_for(2);
        assert!(
            two < random,
            "choice-of-two error {two} not below random {random}"
        );
    }

    #[test]
    fn dcbo_sequential_interface_tracks_errors() {
        let mut q = FifoRankTracker::new(DCboQueue::new(8, 21));
        for i in 0..5_000 {
            q.enqueue(i);
        }
        while q.dequeue().is_some() {}
        let s = q.stats();
        assert_eq!(s.dequeues, 5_000);
        // Balanced operations keep the error around the shard count.
        assert!(
            s.mean_error() <= 4.0 * 8.0,
            "d-CBO mean error {} far beyond shards",
            s.mean_error()
        );
    }

    #[test]
    fn dcbo_concurrent_no_loss_no_duplication() {
        use std::sync::Arc;
        let q: Arc<DCboQueue<usize>> = Arc::new(DCboQueue::new(6, 3));
        let threads = 8;
        let per = 5_000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                    let mut got = Vec::new();
                    for i in 0..per {
                        q.enqueue(t * per + i, &mut rng);
                        if i % 2 == 0 {
                            if let Some(v) = q.dequeue(&mut rng) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut rng = SmallRng::seed_from_u64(0);
        while let Some(v) = q.dequeue(&mut rng) {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..threads * per).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn dra_concurrent_no_loss_no_duplication() {
        use std::sync::Arc;
        let q: Arc<DRaQueue<usize>> = Arc::new(DRaQueue::new(6, 2, 3));
        let threads = 8;
        let per = 5_000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                    let mut got = Vec::new();
                    for i in 0..per {
                        q.enqueue(t * per + i, &mut rng);
                        if i % 2 == 0 {
                            if let Some(v) = q.dequeue(&mut rng) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut rng = SmallRng::seed_from_u64(0);
        while let Some(v) = q.dequeue(&mut rng) {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..threads * per).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn dcbo_home_shard_pops_are_not_steals() {
        // A single worker draining with affinity takes mostly from its
        // home shard at first; the flag distinguishes home from foreign.
        let q: DCboQueue<u64> = DCboQueue::new(4, 9);
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..100 {
            q.enqueue(i, &mut rng);
        }
        let mut home_pops = 0;
        let mut steals = 0;
        while let Some((_, stolen)) = q.dequeue_from(1, &mut rng) {
            if stolen {
                steals += 1;
            } else {
                home_pops += 1;
            }
        }
        assert_eq!(home_pops + steals, 100);
        assert!(home_pops > 0, "home shard never drained");
        assert!(steals > 0, "foreign shards never drained");
    }

    #[test]
    fn thread_local_picker_ops_conserve_items() {
        use std::sync::Arc;
        let q: Arc<DCboQueue<usize>> = Arc::new(DCboQueue::new(4, 17));
        let threads = 4;
        let per = 2_000usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        q.enqueue_local(t * per + i);
                    }
                });
            }
        });
        let mut seen = std::collections::HashSet::new();
        while let Some((v, _)) = q.dequeue_from_local(0) {
            assert!(seen.insert(v), "duplicate {v}");
        }
        assert_eq!(seen.len(), threads * per);
    }
}
