//! Relaxed FIFO queues built on the random choice of two.
//!
//! A **relaxed FIFO** may dequeue *one of the oldest* items instead of
//! necessarily the oldest. For a relaxed dequeue of item `x`, the number
//! of items still in the queue that were enqueued before `x` is the
//! **rank error** — the FIFO analogue of the priority-queue rank the
//! [`RankTracker`](crate::instrument::RankTracker) measures. Relaxation
//! buys scalability: sub-FIFOs are contended independently, and the
//! choice-of-two rule keeps the error envelope logarithmically tight in
//! the spirit of balanced allocations (Azar et al.), exactly as the
//! MultiQueue does for priorities.
//!
//! Two family members, mirroring the d-RA / d-CBO line of relaxed-FIFO
//! designs (see `relaxed-queue-simulations` and the PPoPP 2025 d-CBO
//! paper referenced in SNIPPETS.md):
//!
//! * [`DRaQueue`] — **d-RA**: `d` random sub-queue samples per
//!   operation; enqueue goes to the sampled sub-queue with the fewest
//!   live items (balanced allocation on *lengths*), dequeue takes the
//!   oldest visible head among the sampled sub-queues (items carry a
//!   global arrival stamp).
//! * [`DCboQueue`] — **d-CBO** (*choice of balanced operations*): every
//!   shard counts its completed enqueues and dequeues; enqueue goes to
//!   the sampled shard with the fewest enqueues, dequeue pops the
//!   sampled shard with the fewest dequeues. Because both counters stay
//!   balanced, shard heads age at nearly the same rate and popping the
//!   least-dequeued shard approximates global FIFO order — without any
//!   global coordination (two relaxed atomic loads per choice).
//!
//! Both are concurrent (`&self` operations taking the caller's RNG, as
//! the runtime expects) **and** implement the sequential [`RelaxedFifo`]
//! trait for simulation and instrumentation.
//!
//! # Shard backends
//!
//! The sub-queue inside each shard is pluggable through [`SubFifo`]:
//!
//! * [`MutexSub`] — the PR 1 baseline, a `Mutex<VecDeque>` per shard;
//! * [`MsQueue`](crate::lockfree::MsQueue) — lock-free Michael–Scott
//!   linked queue;
//! * [`SegRingQueue`] — lock-free
//!   segmented ring buffer, the **default** backend.
//!
//! See [`lockfree`](crate::lockfree) for the algorithms and for guidance
//! on choosing; `fifo_contention` in `rsched-bench` sweeps all of them
//! under thread contention.
//!
//! # Worker sessions
//!
//! Long-lived workers drive these queues through a [`FifoSession`]
//! (from [`DRaQueue::session`] / [`DCboQueue::session`]): the amortized
//! epoch pin, a private shard-picker RNG, **owned home shards** drained
//! before any steal ([`pop_session`](DCboQueue::pop_session)), and a
//! bounded **spawn buffer** whose contents publish as one
//! balanced-choice batch ([`flush_session`](DCboQueue::flush_session)).
//! The raw `&self` + caller-RNG operations remain for tests and
//! one-shot callers; the session path is what `rsched-runtime` workers
//! and the contention benchmarks use.
//!
//! [`FifoRankTracker`] wraps any [`RelaxedFifo`] and measures empirical
//! rank errors against a shadow order, mirroring the priority-queue
//! instrumentation in [`instrument`](crate::instrument); its concurrent
//! counterpart is
//! [`ConcurrentRankEstimator`](crate::instrument::ConcurrentRankEstimator).

use crate::lockfree::SegRingQueue;
use crate::telemetry;
use crate::{FlushReport, PopSource, PushOutcome, SessionConfig, SessionPush, MAX_SPAWN_BATCH};
use crossbeam::epoch;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// A queue with relaxed FIFO semantics (sequential interface).
///
/// Dequeue returns *one of the oldest* items; how far from the oldest is
/// bounded by the structure's relaxation. The concurrent members of the
/// family ([`DRaQueue`], [`DCboQueue`]) additionally expose `&self`
/// operations for the runtime; this trait is the sequential-model
/// surface shared by every member, used for simulation and
/// instrumentation.
pub trait RelaxedFifo<T> {
    /// Append `item` (relaxed tail position).
    fn enqueue(&mut self, item: T);

    /// Remove one of the oldest items, or `None` if empty.
    fn dequeue(&mut self) -> Option<T>;

    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` if no items are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of internal sub-queues — the scale parameter of the rank
    /// error envelope (1 = exact FIFO).
    fn subqueues(&self) -> usize;
}

// ---------------------------------------------------------------------
// Shard backends
// ---------------------------------------------------------------------

/// A per-operation token that is either borrowed from a live
/// [`PinSession`] or freshly created — so workers holding a session pay
/// no epoch entry at all per operation.
pub enum TokRef<'a, G> {
    /// Borrowed from the session's long-lived guard.
    Borrowed(&'a G),
    /// Freshly created for this operation.
    Owned(G),
}

impl<G> std::ops::Deref for TokRef<'_, G> {
    type Target = G;

    fn deref(&self) -> &G {
        match self {
            TokRef::Borrowed(g) => g,
            TokRef::Owned(g) => g,
        }
    }
}

/// Result of a non-blocking pop attempt on a [`SubFifo`].
#[derive(Debug)]
pub enum TryPop<T> {
    /// Got the sub-queue's head element and its arrival stamp.
    Item((u64, T)),
    /// The sub-queue was observed empty (a hint under concurrency).
    Empty,
    /// The sub-queue is temporarily unavailable (a lock-based backend's
    /// lock is held). Lock-free backends never report this.
    Contended,
}

/// One concurrent sub-queue (shard) of the relaxed FIFO family.
///
/// Elements carry a `u64` arrival stamp alongside the payload so that
/// d-RA's oldest-head dequeue rule can peek stamps without touching the
/// (racily moved-out) payload. d-CBO passes `0` — its policy never reads
/// stamps.
pub trait SubFifo<T>: Send + Sync {
    /// `true` when the backend's operations pin the epoch-reclamation
    /// scheme; lets [`PinSession`] and the runtime know whether holding
    /// an amortized pin is worthwhile.
    const NEEDS_EPOCH: bool = false;

    /// Per-operation protection token: an epoch guard for lock-free
    /// backends, zero-sized for lock-based ones. The composing queue
    /// creates **one** token per relaxed-FIFO operation and threads it
    /// through every sample, peek and pop attempt, so backends never
    /// re-enter the epoch scheme per sub-call.
    type Token;

    /// Produce a token for one composed operation.
    fn token() -> Self::Token;

    /// Borrow the token from a live [`PinSession`] when possible,
    /// falling back to a fresh one.
    fn borrow_token(session: &PinSession) -> TokRef<'_, Self::Token>;

    /// An empty sub-queue.
    fn new() -> Self;

    /// Append `item` stamped with `seq`.
    fn push(&self, seq: u64, item: T, tok: &Self::Token);

    /// Non-blocking pop attempt; never waits for another thread.
    fn try_pop(&self, tok: &Self::Token) -> TryPop<T>;

    /// Pop, waiting for a lock if the backend has one (lock-free
    /// backends are identical to [`try_pop`](SubFifo::try_pop)).
    fn pop_wait(&self, tok: &Self::Token) -> Option<(u64, T)>;

    /// The arrival stamp of the head element, if observable right now
    /// (`None` when empty, unavailable, or not yet published).
    fn head_seq(&self, tok: &Self::Token) -> Option<u64>;
}

/// The PR 1 baseline backend: a mutex around a `VecDeque`.
///
/// Fastest under zero contention (an uncontended lock is cheaper than an
/// epoch pin), worst under oversubscription: a preempted lock holder
/// stalls every other thread on the shard.
#[derive(Debug, Default)]
pub struct MutexSub<T> {
    fifo: Mutex<VecDeque<(u64, T)>>,
}

impl<T: Send> SubFifo<T> for MutexSub<T> {
    type Token = ();

    fn token() {}

    fn borrow_token(_session: &PinSession) -> TokRef<'_, ()> {
        TokRef::Owned(())
    }

    fn new() -> Self {
        MutexSub {
            fifo: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, seq: u64, item: T, _tok: &()) {
        self.fifo.lock().push_back((seq, item));
    }

    fn try_pop(&self, _tok: &()) -> TryPop<T> {
        match self.fifo.try_lock() {
            None => TryPop::Contended,
            Some(mut fifo) => match fifo.pop_front() {
                Some(pair) => TryPop::Item(pair),
                None => TryPop::Empty,
            },
        }
    }

    fn pop_wait(&self, _tok: &()) -> Option<(u64, T)> {
        self.fifo.lock().pop_front()
    }

    fn head_seq(&self, _tok: &()) -> Option<u64> {
        self.fifo
            .try_lock()
            .and_then(|f| f.front().map(|&(s, _)| s))
    }
}

// ---------------------------------------------------------------------
// Shared shard machinery
// ---------------------------------------------------------------------

/// Largest supported `d` for [`DRaQueue`] / [`DCboQueue`] (candidate
/// buffers are stack-allocated at this size).
const MAX_CHOICES: usize = 8;

/// One shard: a sub-queue plus its completed operation counters.
/// Counters are read before popping/pushing (the choice is a heuristic;
/// slight staleness only costs rank error, never correctness).
#[derive(Debug)]
struct Shard<S> {
    sub: S,
    enqueues: AtomicU64,
    dequeues: AtomicU64,
}

impl<S> Shard<S> {
    /// Completed enqueues minus completed dequeues — the approximate
    /// live length (exact when quiescent).
    fn approx_len(&self) -> u64 {
        self.enqueues
            .load(Ordering::Relaxed)
            .saturating_sub(self.dequeues.load(Ordering::Relaxed))
    }
}

fn new_shards<T, S: SubFifo<T>>(n: usize) -> Box<[CachePadded<Shard<S>>]> {
    (0..n)
        .map(|_| {
            CachePadded::new(Shard {
                sub: S::new(),
                enqueues: AtomicU64::new(0),
                dequeues: AtomicU64::new(0),
            })
        })
        .collect()
}

/// How many operations a [`PinSession`] batches under one epoch pin
/// before repinning (bounding how long reclamation can be held up).
const REPIN_EVERY: u32 = 32;

/// An amortized epoch pin for a batch of queue operations.
///
/// Entering the epoch scheme costs a fence; a worker doing millions of
/// operations should not pay it per operation. Every worker session
/// ([`FifoSession`], [`MqSession`](crate::multiqueue::MqSession)) embeds
/// one pin so the per-operation pins inside the queue collapse to
/// counter bumps, and [`tick`](Self::tick) repins every `REPIN_EVERY`
/// (32) calls so the global epoch — and therefore memory reclamation —
/// keeps advancing. For backends that don't use epochs (e.g.
/// [`MutexSub`]) the pin is an inert no-op.
#[derive(Debug, Default)]
pub struct PinSession {
    guard: Option<epoch::Guard>,
    ops: u32,
}

impl PinSession {
    /// A session that pins only if `needs_epoch`.
    pub fn new(needs_epoch: bool) -> Self {
        PinSession {
            guard: needs_epoch.then(epoch::pin),
            ops: 0,
        }
    }

    /// An inert session (for schedulers without epoch reclamation).
    pub fn none() -> Self {
        Self::default()
    }

    /// The held epoch guard, if this session is live. Queue operations
    /// called through the `*_in` variants borrow it instead of pinning.
    pub fn guard(&self) -> Option<&epoch::Guard> {
        self.guard.as_ref()
    }

    /// Count one batched operation, repinning when the batch is full.
    /// Call once per queue operation performed under the session.
    pub fn tick(&mut self) {
        if let Some(guard) = &mut self.guard {
            self.ops += 1;
            if self.ops >= REPIN_EVERY {
                self.ops = 0;
                guard.repin();
            }
        }
    }
}

/// Fill `buf[..d]` with uniform shard samples — the steal-phase
/// candidates (home shards were already drained by the locality phase).
fn fill_candidates<R: Rng>(q: usize, d: usize, rng: &mut R, buf: &mut [usize; MAX_CHOICES]) {
    for c in buf.iter_mut().take(d) {
        *c = rng.gen_range(0..q);
    }
}

// ---------------------------------------------------------------------
// The FIFO worker session
// ---------------------------------------------------------------------

/// A worker's session over a [`DRaQueue`] / [`DCboQueue`] — the single
/// per-worker state object of the relaxed FIFO family (see the
/// worker-session section of the [crate docs](crate)).
///
/// Carries the amortized epoch pin, the worker's private shard-picker
/// RNG, the **owned home shards** drained before any steal, and the
/// bounded **spawn buffer** whose contents publish as one batch to a
/// single balanced-choice shard. Obtained from [`DRaQueue::session`] /
/// [`DCboQueue::session`]; every session operation on the queue takes
/// `&mut` session and `&self` queue, so any number of sessions can work
/// one queue concurrently.
#[derive(Debug)]
pub struct FifoSession<T> {
    pin: PinSession,
    rng: SmallRng,
    /// Home shards, strided across workers (`tid + i·workers mod q`), so
    /// with `workers × shards_per_worker ≤ q` no shard has two owners.
    homes: Vec<usize>,
    /// Index into `homes` of the last home hit — the locality phase
    /// resumes there so a hot home shard keeps serving until it misses.
    rotor: usize,
    buf: Vec<T>,
    /// Live spawn-buffer threshold. Fixed at the configured
    /// `spawn_batch` unless `adaptive` is set, in which case it starts
    /// at 1 and moves between 1 and `batch_cap` with the pop signal.
    batch: usize,
    /// Ceiling for the live threshold (the configured `spawn_batch`).
    batch_cap: usize,
    /// Adaptive batching on: double `batch` on a home-shard pop hit,
    /// halve it on a pop miss (the quiescence signal).
    adaptive: bool,
}

impl<T> FifoSession<T> {
    /// The home shards this session owns (empty = no affinity).
    pub fn homes(&self) -> &[usize] {
        &self.homes
    }

    /// Elements parked in the spawn buffer, not yet published.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The live spawn-buffer threshold: the configured `spawn_batch`
    /// when fixed, the current adapted value when
    /// [`SessionConfig::adaptive_spawn`] is set.
    pub fn spawn_batch(&self) -> usize {
        self.batch
    }

    /// Fold one pop outcome into the adaptive batch size: a home-shard
    /// hit means this session's shards hold plenty of local work, so
    /// batching pushes is cheap latency-wise — double the threshold
    /// (up to the configured ceiling). A miss means the structure is
    /// near quiescence and every buffered spawn is invisible progress —
    /// halve toward 1 so pushes publish (almost) immediately.
    fn adapt(&mut self, outcome: Option<PopSource>) {
        if !self.adaptive {
            return;
        }
        match outcome {
            Some(PopSource::Home) => self.batch = (self.batch * 2).min(self.batch_cap),
            None => self.batch = (self.batch / 2).max(1),
            Some(PopSource::Steal) | Some(PopSource::Shared) => {}
        }
    }

    fn is_home(&self, shard: usize) -> bool {
        self.homes.contains(&shard)
    }

    fn classify(&self, shard: usize) -> PopSource {
        if self.homes.is_empty() {
            PopSource::Shared
        } else if self.is_home(shard) {
            PopSource::Home
        } else {
            PopSource::Steal
        }
    }
}

/// Build a session over `q` shards from `cfg`: derive the RNG stream,
/// stride the home shards, size the buffer.
fn new_fifo_session<T>(q: usize, cfg: &SessionConfig) -> FifoSession<T> {
    let workers = cfg.workers.max(1);
    let spw = cfg.shards_per_worker.min(q);
    let mut homes = Vec::with_capacity(spw);
    for i in 0..spw {
        let shard = (cfg.tid + i * workers) % q;
        if !homes.contains(&shard) {
            homes.push(shard);
        }
    }
    let batch_cap = cfg.spawn_batch.clamp(1, MAX_SPAWN_BATCH);
    let adaptive = cfg.adaptive_spawn && batch_cap > 1;
    FifoSession {
        pin: PinSession::none(),
        // `cfg.seed` is already the per-worker stream (the config
        // constructors mix the tid in exactly once); re-mixing the tid
        // here would cancel that mix and hand every worker the same
        // picker stream.
        rng: SmallRng::seed_from_u64(cfg.seed),
        homes,
        rotor: 0,
        buf: Vec::with_capacity(if batch_cap > 1 { batch_cap } else { 0 }),
        // Adaptive sessions start unbatched and earn their buffer from
        // home-shard pop hits; fixed sessions get the whole cap up
        // front, exactly as before.
        batch: if adaptive { 1 } else { batch_cap },
        batch_cap,
        adaptive,
    }
}

// ---------------------------------------------------------------------
// d-RA
// ---------------------------------------------------------------------

/// d-RA relaxed FIFO: `d` random choices over sub-FIFO shards.
///
/// Enqueue samples `d` shards uniformly and appends to the one with the
/// fewest live items; dequeue samples `d` shards and removes the *oldest
/// visible head* among them (items carry a global arrival stamp). With
/// `d = 1` both rules degenerate to uniform random placement/removal;
/// with one sub-queue the structure is an exact FIFO.
///
/// Concurrent operations take the caller's RNG (`&self`); the
/// [`RelaxedFifo`] impl provides the sequential-model interface. The
/// shard backend defaults to the lock-free
/// [`SegRingQueue`]; see [`SubFifo`].
///
/// # Examples
///
/// ```
/// use rsched_queues::QueueBuilder;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let q = QueueBuilder::new(8).seed(42).d_ra();
/// let mut rng = SmallRng::seed_from_u64(1);
/// for i in 0..100 {
///     q.enqueue(i, &mut rng);
/// }
/// let first = q.dequeue(&mut rng).unwrap();
/// // Relaxed: one of the oldest items, not necessarily item 0.
/// assert!(first < 100);
/// assert_eq!(q.len(), 99);
/// ```
pub struct DRaQueue<T, S = SegRingQueue<T>> {
    shards: Box<[CachePadded<Shard<S>>]>,
    /// Global arrival stamps (unique, monotone modulo fetch order).
    arrivals: AtomicU64,
    d: usize,
    /// RNG for the sequential [`RelaxedFifo`] interface only; the
    /// concurrent operations take the caller's RNG.
    seq_rng: SmallRng,
    _item: PhantomData<fn() -> T>,
}

impl<T: Send, S: SubFifo<T>> DRaQueue<T, S> {
    /// `subqueues` shards of backend `S` with `d` choices per operation
    /// (`1 ..= MAX_CHOICES`).
    #[deprecated(note = "use QueueBuilder::new(subqueues).choices(d).seed(s).d_ra_on::<T, S>()")]
    pub fn with_backend(subqueues: usize, d: usize, seed: u64) -> Self {
        Self::construct(subqueues, d, seed)
    }

    /// The one real constructor, reached through
    /// [`QueueBuilder`](crate::QueueBuilder).
    pub(crate) fn construct(subqueues: usize, d: usize, seed: u64) -> Self {
        assert!(subqueues > 0, "d-RA needs at least one sub-queue");
        assert!(
            (1..=MAX_CHOICES).contains(&d),
            "d-RA supports 1..={MAX_CHOICES} choices, got {d}"
        );
        Self {
            shards: new_shards::<T, S>(subqueues),
            arrivals: AtomicU64::new(0),
            d,
            seq_rng: SmallRng::seed_from_u64(seed),
            _item: PhantomData,
        }
    }

    /// The number of choices `d`.
    pub fn choices(&self) -> usize {
        self.d
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of stored items, derived from the per-shard operation
    /// counters — exact when quiescent, an approximation mid-flight, and
    /// free of any shared hot-path counter.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.approx_len() as usize).sum()
    }

    /// `true` if empty (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `item` to the sampled shard with the fewest live items.
    pub fn enqueue<R: Rng>(&self, item: T, rng: &mut R) {
        self.enqueue_tok(item, rng, &S::token());
    }

    fn enqueue_tok<R: Rng>(&self, item: T, rng: &mut R, tok: &S::Token) {
        let q = self.shards.len();
        let mut best = rng.gen_range(0..q);
        let mut best_len = self.shards[best].approx_len();
        for _ in 1..self.d {
            let c = rng.gen_range(0..q);
            let l = self.shards[c].approx_len();
            if l < best_len {
                best = c;
                best_len = l;
            }
        }
        let seq = self.arrivals.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[best];
        shard.sub.push(seq, item, tok);
        shard.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop the oldest visible head among `d` sampled shards; `None` only
    /// after a full sweep found every shard empty (a hint, not a
    /// linearizable emptiness check — callers own termination detection).
    pub fn dequeue<R: Rng>(&self, rng: &mut R) -> Option<T> {
        self.pop_with_homes(&[], &mut 0, rng, &S::token())
            .map(|(item, _)| item)
    }

    /// Worker-affine dequeue without a session: shard `home % shards` is
    /// drained first, then the choice-of-`d` steal rounds run. The
    /// returned flag is `true` when the element came from a foreign
    /// shard — a steal. Pass `usize::MAX` for no affinity. Workers in a
    /// pool use [`session`](Self::session) + [`pop_session`] instead,
    /// which add multi-shard ownership and the amortized epoch pin.
    ///
    /// [`pop_session`]: Self::pop_session
    pub fn dequeue_from<R: Rng>(&self, home: usize, rng: &mut R) -> Option<(T, bool)> {
        let q = self.shards.len();
        let arr = [home % q.max(1)];
        let homes: &[usize] = if home == usize::MAX { &[] } else { &arr };
        self.pop_with_homes(homes, &mut 0, rng, &S::token())
            .map(|(item, c)| (item, !homes.is_empty() && homes[0] != c))
    }

    /// Open a worker session (see [`FifoSession`]): home shards strided
    /// by `cfg.tid`/`cfg.workers`, spawn buffer of `cfg.spawn_batch`,
    /// epoch pin live iff the backend needs one.
    pub fn session(&self, cfg: &SessionConfig) -> FifoSession<T> {
        let mut s = new_fifo_session(self.shards.len(), cfg);
        s.pin = PinSession::new(S::NEEDS_EPOCH);
        s
    }

    /// Session push: publishes immediately when `spawn_batch == 1`,
    /// otherwise parks the item in the session buffer, auto-flushing a
    /// full buffer. FIFO pushes never merge, so the outcome is
    /// [`SessionPush::Inserted`] or [`SessionPush::Buffered`].
    pub fn push_session(&self, item: T, s: &mut FifoSession<T>) -> PushOutcome {
        if s.batch <= 1 {
            s.pin.tick();
            let tok = S::borrow_token(&s.pin);
            self.enqueue_tok(item, &mut s.rng, &tok);
            return PushOutcome::immediate(SessionPush::Inserted);
        }
        s.buf.push(item);
        let flushed = if s.buf.len() >= s.batch {
            self.flush_session(s)
        } else {
            FlushReport::default()
        };
        PushOutcome {
            push: SessionPush::Buffered,
            flushed,
        }
    }

    /// Publish everything parked in the session buffer as **one batch**:
    /// one balanced choice (the session's current home shard competes
    /// with `d − 1` random samples on live length), one arrival-stamp
    /// range claim, one enqueue-counter bump.
    pub fn flush_session(&self, s: &mut FifoSession<T>) -> FlushReport {
        if s.buf.is_empty() {
            return FlushReport::default();
        }
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let q = self.shards.len();
        let mut best = s
            .homes
            .get(s.rotor)
            .copied()
            .unwrap_or_else(|| s.rng.gen_range(0..q));
        let mut best_len = self.shards[best].approx_len();
        for _ in 1..self.d {
            let c = s.rng.gen_range(0..q);
            let l = self.shards[c].approx_len();
            if l < best_len {
                best = c;
                best_len = l;
            }
        }
        let n = s.buf.len() as u64;
        let base = self.arrivals.fetch_add(n, Ordering::Relaxed);
        let shard = &self.shards[best];
        for (i, item) in s.buf.drain(..).enumerate() {
            shard.sub.push(base + i as u64, item, &tok);
        }
        shard.enqueues.fetch_add(n, Ordering::Relaxed);
        telemetry::count(telemetry::OpCount::FlushPublished, n);
        FlushReport {
            published: n,
            merged: 0,
        }
    }

    /// Locality-aware session pop: drain the session's home shards first
    /// (oldest visible home head — [`PopSource::Home`]), then fall back
    /// to the choice-of-`d` steal rounds over random shards
    /// ([`PopSource::Steal`]). Sessions without affinity report
    /// [`PopSource::Shared`]. `None` semantics match
    /// [`dequeue`](Self::dequeue). Buffered spawns are **not** popped
    /// here — flush on a miss (the runtime's worker loop does).
    pub fn pop_session(&self, s: &mut FifoSession<T>) -> Option<(T, PopSource)> {
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let mut rotor = s.rotor;
        let out = self.pop_with_homes(&s.homes, &mut rotor, &mut s.rng, &tok);
        s.rotor = rotor;
        let out = out.map(|(item, shard)| {
            let src = s.classify(shard);
            (item, src)
        });
        s.adapt(out.as_ref().map(|&(_, src)| src));
        out
    }

    /// The shared pop engine: locality phase over `homes`, then steal
    /// rounds, then the oldest-head and full-sweep fallbacks. Returns
    /// the popped item and the shard it came from.
    fn pop_with_homes<R: Rng>(
        &self,
        homes: &[usize],
        rotor: &mut usize,
        rng: &mut R,
        tok: &S::Token,
    ) -> Option<(T, usize)> {
        let q = self.shards.len();
        let d = self.d;
        // Locality phase: start at the home shard with the oldest
        // visible head, then fall through the remaining owned homes in
        // rotor order — a lost race or a contended mutex on one home
        // must not forfeit the whole phase to the steal rounds.
        let nh = homes.len();
        if nh > 0 {
            let mut start = *rotor % nh;
            let mut best: Option<u64> = None;
            for i in 0..nh {
                let idx = (*rotor + i) % nh;
                if let Some(stamp) = self.shards[homes[idx]].sub.head_seq(tok) {
                    if best.is_none_or(|b| stamp < b) {
                        best = Some(stamp);
                        start = idx;
                    }
                }
            }
            for i in 0..nh {
                let idx = (start + i) % nh;
                let c = homes[idx];
                if let TryPop::Item((_, item)) = self.shards[c].sub.try_pop(tok) {
                    *rotor = idx;
                    self.finish_pop(c);
                    telemetry::record(telemetry::OpHist::Steal, 0);
                    return Some((item, c));
                }
            }
        }
        // Steal rounds: `d` random samples, oldest visible head first;
        // shards with no visible head (empty, or a contended mutex
        // backend) are skipped.
        for round in 0..(2 * q + 4) {
            let mut cand = [0usize; MAX_CHOICES];
            fill_candidates(q, d, rng, &mut cand);
            let mut heads = [(u64::MAX, usize::MAX); MAX_CHOICES];
            let mut n = 0;
            for &c in &cand[..d] {
                if let Some(s) = self.shards[c].sub.head_seq(tok) {
                    heads[n] = (s, c);
                    n += 1;
                }
            }
            heads[..n].sort_unstable();
            let mut tried = usize::MAX;
            for &(_, c) in &heads[..n] {
                if c == tried {
                    continue;
                }
                tried = c;
                if let TryPop::Item((_, item)) = self.shards[c].sub.try_pop(tok) {
                    self.finish_pop(c);
                    telemetry::record(telemetry::OpHist::Steal, round as u64);
                    return Some((item, c));
                }
            }
            if self.is_empty() {
                break;
            }
        }
        // Oldest-head fallback over *all* shards: preserves the
        // sequential guarantee that a non-empty queue never reports
        // empty, and keeps the error small at drain tails.
        for _ in 0..2 {
            let oldest = (0..q)
                .filter_map(|c| self.shards[c].sub.head_seq(tok).map(|s| (s, c)))
                .min();
            let Some((_, c)) = oldest else { break };
            if let Some((_, item)) = self.shards[c].sub.pop_wait(tok) {
                self.finish_pop(c);
                telemetry::record(telemetry::OpHist::Steal, (2 * q + 4) as u64);
                return Some((item, c));
            }
        }
        // Final sweep, rotated from a per-thread offset (first home
        // shard if affine, else a random start) so convoys don't all
        // line up on shard 0.
        let start = homes
            .first()
            .copied()
            .unwrap_or_else(|| rng.gen_range(0..q));
        for k in 0..q {
            let c = (start + k) % q;
            if let Some((_, item)) = self.shards[c].sub.pop_wait(tok) {
                self.finish_pop(c);
                telemetry::record(telemetry::OpHist::Sweep, (k + 1) as u64);
                return Some((item, c));
            }
        }
        telemetry::count(telemetry::OpCount::EmptyPop, 1);
        None
    }

    fn finish_pop(&self, c: usize) {
        self.shards[c].dequeues.fetch_add(1, Ordering::Relaxed);
    }
}

impl<T: Send> DRaQueue<T> {
    /// `subqueues` sub-FIFOs with `d` choices per operation, on the
    /// default lock-free segmented-ring backend.
    #[deprecated(note = "use QueueBuilder::new(subqueues).choices(d).seed(s).d_ra()")]
    pub fn new(subqueues: usize, d: usize, seed: u64) -> Self {
        Self::construct(subqueues, d, seed)
    }

    /// The classic two-choice configuration.
    #[deprecated(note = "use QueueBuilder::new(subqueues).seed(s).d_ra()")]
    pub fn choice_of_two(subqueues: usize, seed: u64) -> Self {
        Self::construct(subqueues, 2, seed)
    }
}

impl<T, S: SubFifo<T>> std::fmt::Debug for DRaQueue<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DRaQueue")
            .field("shards", &self.shards.len())
            .field("d", &self.d)
            .field(
                "len",
                &self.shards.iter().map(|s| s.approx_len()).sum::<u64>(),
            )
            .finish()
    }
}

impl<T: Send, S: SubFifo<T>> RelaxedFifo<T> for DRaQueue<T, S> {
    fn enqueue(&mut self, item: T) {
        // Exclusive access: run the concurrent op on a moved-out copy of
        // the sequential RNG (cloning 4 words beats any lock).
        let mut rng = self.seq_rng.clone();
        DRaQueue::enqueue(&*self, item, &mut rng);
        self.seq_rng = rng;
    }

    fn dequeue(&mut self) -> Option<T> {
        let mut rng = self.seq_rng.clone();
        let out = DRaQueue::dequeue(&*self, &mut rng);
        self.seq_rng = rng;
        out
    }

    fn len(&self) -> usize {
        DRaQueue::len(self)
    }

    fn subqueues(&self) -> usize {
        self.num_shards()
    }
}

// ---------------------------------------------------------------------
// d-CBO
// ---------------------------------------------------------------------

/// Concurrent d-CBO relaxed FIFO: choice of two by balanced operation
/// counts over sub-FIFO shards.
///
/// `enqueue` samples `d` shards and appends to the one with the fewest
/// *completed enqueues*; `dequeue` samples `d` shards and pops the one
/// with the fewest *completed dequeues* (skipping empty or contended
/// shards). `None` is returned only after a full sweep found every shard
/// empty — like the workspace's other concurrent queues this is a hint,
/// not a linearizable emptiness check, and callers own termination
/// detection.
///
/// The shard backend defaults to the lock-free
/// [`SegRingQueue`]; see [`SubFifo`] and
/// the [`DCboMutexQueue`] / [`DCboMsQueue`] aliases.
///
/// # Examples
///
/// ```
/// use rsched_queues::QueueBuilder;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let q = QueueBuilder::new(8).seed(1).d_cbo();
/// let mut rng = SmallRng::seed_from_u64(9);
/// for i in 0..100u64 {
///     q.enqueue(i, &mut rng);
/// }
/// assert_eq!(q.len(), 100);
/// let mut popped = Vec::new();
/// while let Some(v) = q.dequeue(&mut rng) {
///     popped.push(v);
/// }
/// popped.sort_unstable();
/// assert_eq!(popped, (0..100).collect::<Vec<_>>());
/// ```
pub struct DCboQueue<T, S = SegRingQueue<T>> {
    shards: Box<[CachePadded<Shard<S>>]>,
    d: usize,
    /// RNG for the sequential [`RelaxedFifo`] interface only; the
    /// concurrent operations take the caller's RNG.
    seq_rng: SmallRng,
    _item: PhantomData<fn() -> T>,
}

impl<T: Send, S: SubFifo<T>> DCboQueue<T, S> {
    /// Largest supported choice count `d` (the dequeue candidate buffer
    /// is stack-allocated at this size).
    pub const MAX_CHOICES: usize = MAX_CHOICES;

    /// `shards` sub-FIFOs of backend `S` with `d` choices per operation
    /// (`1 ..= MAX_CHOICES`).
    #[deprecated(note = "use QueueBuilder::new(shards).choices(d).seed(s).d_cbo_on::<T, S>()")]
    pub fn with_backend(shards: usize, d: usize, seed: u64) -> Self {
        Self::construct(shards, d, seed)
    }

    /// The one real constructor, reached through
    /// [`QueueBuilder`](crate::QueueBuilder).
    pub(crate) fn construct(shards: usize, d: usize, seed: u64) -> Self {
        assert!(shards > 0, "d-CBO needs at least one shard");
        assert!(
            (1..=Self::MAX_CHOICES).contains(&d),
            "d-CBO supports 1..={} choices, got {d}",
            Self::MAX_CHOICES
        );
        Self {
            shards: new_shards::<T, S>(shards),
            d,
            seq_rng: SmallRng::seed_from_u64(seed ^ 0xD_CB0),
            _item: PhantomData,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of stored items, derived from the per-shard operation
    /// counters — exact when quiescent, an approximation mid-flight, and
    /// free of any shared hot-path counter.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.approx_len() as usize).sum()
    }

    /// `true` if empty (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `item` to the sampled shard with the fewest completed
    /// enqueues.
    pub fn enqueue<R: Rng>(&self, item: T, rng: &mut R) {
        self.enqueue_tok(item, rng, &S::token());
    }

    fn enqueue_tok<R: Rng>(&self, item: T, rng: &mut R, tok: &S::Token) {
        let q = self.shards.len();
        let mut best = rng.gen_range(0..q);
        for _ in 1..self.d {
            let c = rng.gen_range(0..q);
            if self.shards[c].enqueues.load(Ordering::Relaxed)
                < self.shards[best].enqueues.load(Ordering::Relaxed)
            {
                best = c;
            }
        }
        let shard = &self.shards[best];
        // d-CBO never reads stamps; the balanced counters are the order.
        shard.sub.push(0, item, tok);
        shard.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop from the sampled shard with the fewest completed dequeues;
    /// `None` only after a full sweep found every shard empty.
    pub fn dequeue<R: Rng>(&self, rng: &mut R) -> Option<T> {
        self.pop_with_homes(&[], &mut 0, rng, &S::token())
            .map(|(item, _)| item)
    }

    /// Worker-affine dequeue without a session: shard `home % shards` is
    /// drained first, then the choice-of-`d` steal rounds run. The
    /// returned flag is `true` when the element came from a foreign
    /// shard — a steal. Pass `usize::MAX` for no affinity. Workers in a
    /// pool use [`session`](Self::session) + [`pop_session`] instead.
    ///
    /// [`pop_session`]: Self::pop_session
    pub fn dequeue_from<R: Rng>(&self, home: usize, rng: &mut R) -> Option<(T, bool)> {
        let q = self.shards.len();
        let arr = [home % q.max(1)];
        let homes: &[usize] = if home == usize::MAX { &[] } else { &arr };
        self.pop_with_homes(homes, &mut 0, rng, &S::token())
            .map(|(item, c)| (item, !homes.is_empty() && homes[0] != c))
    }

    /// Open a worker session (see [`FifoSession`]): home shards strided
    /// by `cfg.tid`/`cfg.workers`, spawn buffer of `cfg.spawn_batch`,
    /// epoch pin live iff the backend needs one.
    pub fn session(&self, cfg: &SessionConfig) -> FifoSession<T> {
        let mut s = new_fifo_session(self.shards.len(), cfg);
        s.pin = PinSession::new(S::NEEDS_EPOCH);
        s
    }

    /// Session push: publishes immediately when `spawn_batch == 1`,
    /// otherwise parks the item in the session buffer, auto-flushing a
    /// full buffer. FIFO pushes never merge, so the outcome is
    /// [`SessionPush::Inserted`] or [`SessionPush::Buffered`].
    pub fn push_session(&self, item: T, s: &mut FifoSession<T>) -> PushOutcome {
        if s.batch <= 1 {
            s.pin.tick();
            let tok = S::borrow_token(&s.pin);
            self.enqueue_tok(item, &mut s.rng, &tok);
            return PushOutcome::immediate(SessionPush::Inserted);
        }
        s.buf.push(item);
        let flushed = if s.buf.len() >= s.batch {
            self.flush_session(s)
        } else {
            FlushReport::default()
        };
        PushOutcome {
            push: SessionPush::Buffered,
            flushed,
        }
    }

    /// Publish everything parked in the session buffer as **one batch**
    /// to a single shard: the session's current home shard competes with
    /// `d − 1` random samples on completed enqueues, then the whole
    /// batch lands there under one counter bump.
    pub fn flush_session(&self, s: &mut FifoSession<T>) -> FlushReport {
        if s.buf.is_empty() {
            return FlushReport::default();
        }
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let q = self.shards.len();
        let mut best = s
            .homes
            .get(s.rotor)
            .copied()
            .unwrap_or_else(|| s.rng.gen_range(0..q));
        for _ in 1..self.d {
            let c = s.rng.gen_range(0..q);
            if self.shards[c].enqueues.load(Ordering::Relaxed)
                < self.shards[best].enqueues.load(Ordering::Relaxed)
            {
                best = c;
            }
        }
        let n = s.buf.len() as u64;
        let shard = &self.shards[best];
        for item in s.buf.drain(..) {
            // d-CBO never reads stamps; the balanced counters are the order.
            shard.sub.push(0, item, &tok);
        }
        shard.enqueues.fetch_add(n, Ordering::Relaxed);
        telemetry::count(telemetry::OpCount::FlushPublished, n);
        FlushReport {
            published: n,
            merged: 0,
        }
    }

    /// Locality-aware session pop: drain the session's home shards first
    /// ([`PopSource::Home`]), then run the fewest-dequeues choice-of-`d`
    /// steal rounds ([`PopSource::Steal`]). Sessions without affinity
    /// report [`PopSource::Shared`]. Buffered spawns are **not** popped
    /// here — flush on a miss (the runtime's worker loop does).
    pub fn pop_session(&self, s: &mut FifoSession<T>) -> Option<(T, PopSource)> {
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let mut rotor = s.rotor;
        let out = self.pop_with_homes(&s.homes, &mut rotor, &mut s.rng, &tok);
        s.rotor = rotor;
        let out = out.map(|(item, shard)| {
            let src = s.classify(shard);
            (item, src)
        });
        s.adapt(out.as_ref().map(|&(_, src)| src));
        out
    }

    /// The shared pop engine: locality phase over `homes` (round-robin
    /// from the last hit), then fewest-dequeues steal rounds, then the
    /// waiting fallback sweep. Returns the popped item and its shard.
    fn pop_with_homes<R: Rng>(
        &self,
        homes: &[usize],
        rotor: &mut usize,
        rng: &mut R,
        tok: &S::Token,
    ) -> Option<(T, usize)> {
        let q = self.shards.len();
        let d = self.d;
        // Locality phase: keep draining the last hot home shard, falling
        // through the other owned homes on a miss.
        let nh = homes.len();
        for i in 0..nh {
            let idx = (*rotor + i) % nh;
            let c = homes[idx];
            if let TryPop::Item((_, item)) = self.shards[c].sub.try_pop(tok) {
                *rotor = idx;
                self.finish_pop(c);
                telemetry::record(telemetry::OpHist::Steal, 0);
                return Some((item, c));
            }
        }
        // Steal rounds: choice-of-d on completed dequeues, non-blocking.
        for round in 0..(2 * q + 4) {
            let mut cand = [0usize; MAX_CHOICES];
            fill_candidates(q, d, rng, &mut cand);
            let cand = &mut cand[..d];
            cand.sort_by_key(|&c| self.shards[c].dequeues.load(Ordering::Relaxed));
            let mut tried = usize::MAX;
            for &c in cand.iter() {
                if c == tried {
                    continue;
                }
                tried = c;
                if let TryPop::Item((_, item)) = self.shards[c].sub.try_pop(tok) {
                    self.finish_pop(c);
                    telemetry::record(telemetry::OpHist::Steal, round as u64);
                    return Some((item, c));
                }
            }
            if self.is_empty() {
                break;
            }
        }
        // Fallback sweep: visit every shard once, waiting on locks.
        // Rotated from a per-thread offset (first home shard if affine,
        // else a random start) so threads that fall back together fan
        // out over the shards instead of convoying onto shard 0.
        let start = homes
            .first()
            .copied()
            .unwrap_or_else(|| rng.gen_range(0..q));
        for k in 0..q {
            let c = (start + k) % q;
            if let Some((_, item)) = self.shards[c].sub.pop_wait(tok) {
                self.finish_pop(c);
                telemetry::record(telemetry::OpHist::Sweep, (k + 1) as u64);
                return Some((item, c));
            }
        }
        telemetry::count(telemetry::OpCount::EmptyPop, 1);
        None
    }

    fn finish_pop(&self, c: usize) {
        self.shards[c].dequeues.fetch_add(1, Ordering::Relaxed);
    }
}

impl<T: Send> DCboQueue<T> {
    /// `shards` sub-FIFOs with the classic two choices per operation, on
    /// the default lock-free segmented-ring backend.
    #[deprecated(note = "use QueueBuilder::new(shards).seed(s).d_cbo()")]
    pub fn new(shards: usize, seed: u64) -> Self {
        Self::construct(shards, 2, seed)
    }

    /// `shards` sub-FIFOs with `d` choices per operation
    /// (`1 ..= MAX_CHOICES`), on the default backend.
    #[deprecated(note = "use QueueBuilder::new(shards).choices(d).seed(s).d_cbo()")]
    pub fn with_choice(shards: usize, d: usize, seed: u64) -> Self {
        Self::construct(shards, d, seed)
    }
}

impl<T, S: SubFifo<T>> std::fmt::Debug for DCboQueue<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DCboQueue")
            .field("shards", &self.shards.len())
            .field("d", &self.d)
            .field(
                "len",
                &self.shards.iter().map(|s| s.approx_len()).sum::<u64>(),
            )
            .finish()
    }
}

impl<T: Send, S: SubFifo<T>> RelaxedFifo<T> for DCboQueue<T, S> {
    fn enqueue(&mut self, item: T) {
        let mut rng = self.seq_rng.clone();
        DCboQueue::enqueue(&*self, item, &mut rng);
        self.seq_rng = rng;
    }

    fn dequeue(&mut self) -> Option<T> {
        let mut rng = self.seq_rng.clone();
        let out = DCboQueue::dequeue(&*self, &mut rng);
        self.seq_rng = rng;
        out
    }

    fn len(&self) -> usize {
        DCboQueue::len(self)
    }

    fn subqueues(&self) -> usize {
        self.num_shards()
    }
}

// ---------------------------------------------------------------------
// Backend aliases
// ---------------------------------------------------------------------

/// d-RA over mutex-guarded shards (the PR 1 baseline).
pub type DRaMutexQueue<T> = DRaQueue<T, MutexSub<T>>;
/// d-RA over lock-free Michael–Scott shards.
pub type DRaMsQueue<T> = DRaQueue<T, crate::lockfree::MsQueue<T>>;
/// d-RA over lock-free segmented-ring shards (the default).
pub type DRaSegQueue<T> = DRaQueue<T, SegRingQueue<T>>;
/// d-RA over fetch-add claimed ring shards (CRQ-style).
pub type DRaFaaQueue<T> = DRaQueue<T, crate::lockfree::FaaRingQueue<T>>;
/// d-CBO over mutex-guarded shards (the PR 1 baseline).
pub type DCboMutexQueue<T> = DCboQueue<T, MutexSub<T>>;
/// d-CBO over lock-free Michael–Scott shards.
pub type DCboMsQueue<T> = DCboQueue<T, crate::lockfree::MsQueue<T>>;
/// d-CBO over lock-free segmented-ring shards (the default).
pub type DCboSegQueue<T> = DCboQueue<T, SegRingQueue<T>>;
/// d-CBO over fetch-add claimed ring shards (CRQ-style).
pub type DCboFaaQueue<T> = DCboQueue<T, crate::lockfree::FaaRingQueue<T>>;

// ---------------------------------------------------------------------
// Rank-error instrumentation (sequential)
// ---------------------------------------------------------------------

/// Aggregated FIFO rank-error statistics.
#[derive(Clone, Debug, Default)]
pub struct FifoRankStats {
    /// Number of successful dequeues measured.
    pub dequeues: u64,
    /// Largest observed rank error (0 = exact FIFO).
    pub max_error: u64,
    /// Sum of observed rank errors (for the mean).
    pub sum_error: u128,
    /// `hist[e]` = dequeues with rank error `e`; errors beyond the
    /// histogram length land in the last bucket.
    pub hist: Vec<u64>,
}

impl FifoRankStats {
    const HIST_BUCKETS: usize = 1024;

    /// Mean rank error (0.0 = always exact).
    pub fn mean_error(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.sum_error as f64 / self.dequeues as f64
        }
    }

    /// Fraction of dequeues that returned the exact oldest item.
    pub fn exact_fraction(&self) -> f64 {
        if self.dequeues == 0 {
            return 0.0;
        }
        self.hist.first().copied().unwrap_or(0) as f64 / self.dequeues as f64
    }

    /// The `q`-quantile (e.g. `0.99`) of the rank-error distribution.
    pub fn error_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        let target = (self.dequeues as f64 * q).ceil() as u64;
        let mut acc = 0u64;
        for (e, &c) in self.hist.iter().enumerate() {
            acc += c;
            if acc >= target {
                return e as u64;
            }
        }
        self.max_error
    }

    pub(crate) fn record(&mut self, error: u64) {
        if self.hist.is_empty() {
            self.hist = vec![0; Self::HIST_BUCKETS];
        }
        self.dequeues += 1;
        self.max_error = self.max_error.max(error);
        self.sum_error += error as u128;
        self.hist[(error as usize).min(Self::HIST_BUCKETS - 1)] += 1;
    }
}

/// A [`RelaxedFifo`] decorator measuring empirical rank errors.
///
/// Items are stamped with a global arrival number on enqueue; on dequeue
/// the error is the count of still-queued items with smaller stamps —
/// the definition from the relaxed-FIFO literature ("the number of items
/// currently in the queue which were inserted before x"). For
/// measurement under real thread contention use
/// [`ConcurrentRankEstimator`](crate::instrument::ConcurrentRankEstimator).
///
/// # Examples
///
/// ```
/// use rsched_queues::fifo::{FifoRankTracker, RelaxedFifo};
/// use rsched_queues::QueueBuilder;
///
/// let mut q = FifoRankTracker::new(QueueBuilder::new(4).seed(7).d_ra());
/// for i in 0..1000 {
///     q.enqueue(i);
/// }
/// while q.dequeue().is_some() {}
/// let s = q.stats();
/// assert_eq!(s.dequeues, 1000);
/// assert!(s.mean_error() < 4.0 * 4.0, "choice-of-two keeps errors near q");
/// ```
#[derive(Debug)]
pub struct FifoRankTracker<T, Q: RelaxedFifo<(u64, T)>> {
    inner: Q,
    next: u64,
    live: BTreeSet<u64>,
    stats: FifoRankStats,
    _item: std::marker::PhantomData<T>,
}

impl<T, Q: RelaxedFifo<(u64, T)>> FifoRankTracker<T, Q> {
    /// Wrap `inner`; the tracker starts empty, so wrap before filling.
    pub fn new(inner: Q) -> Self {
        assert!(inner.is_empty(), "wrap the queue before filling it");
        Self {
            inner,
            next: 0,
            live: BTreeSet::new(),
            stats: FifoRankStats::default(),
            _item: std::marker::PhantomData,
        }
    }

    /// The collected statistics so far.
    pub fn stats(&self) -> &FifoRankStats {
        &self.stats
    }

    /// Consume the tracker, returning the inner queue and the statistics.
    pub fn into_parts(self) -> (Q, FifoRankStats) {
        (self.inner, self.stats)
    }
}

impl<T, Q: RelaxedFifo<(u64, T)>> RelaxedFifo<T> for FifoRankTracker<T, Q> {
    fn enqueue(&mut self, item: T) {
        let seq = self.next;
        self.next += 1;
        self.live.insert(seq);
        self.inner.enqueue((seq, item));
    }

    fn dequeue(&mut self) -> Option<T> {
        let (seq, item) = self.inner.dequeue()?;
        let error = self.live.range(..seq).count() as u64;
        let removed = self.live.remove(&seq);
        debug_assert!(removed, "dequeued an item the shadow does not hold");
        self.stats.record(error);
        Some(item)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn subqueues(&self) -> usize {
        self.inner.subqueues()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueueBuilder;
    use crate::lockfree::MsQueue;

    fn drain<T, Q: RelaxedFifo<T>>(q: &mut Q) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = q.dequeue() {
            out.push(v);
        }
        out
    }

    #[test]
    fn single_subqueue_is_exact_fifo() {
        let mut q = QueueBuilder::new(1).seed(3).d_ra();
        for i in 0..500 {
            RelaxedFifo::enqueue(&mut q, i);
        }
        assert_eq!(drain(&mut q), (0..500).collect::<Vec<_>>());

        let mut q = FifoRankTracker::new(QueueBuilder::new(1).seed(3).d_ra());
        for i in 0..500 {
            q.enqueue(i);
        }
        drain(&mut q);
        assert_eq!(q.stats().max_error, 0, "one sub-queue is exact");
        assert_eq!(q.stats().exact_fraction(), 1.0);
    }

    #[test]
    fn single_subqueue_exact_on_every_backend() {
        fn check<S: SubFifo<i32>>() {
            let mut q: DRaQueue<i32, S> = QueueBuilder::new(1).seed(3).d_ra_on();
            for i in 0..200 {
                RelaxedFifo::enqueue(&mut q, i);
            }
            assert_eq!(drain(&mut q), (0..200).collect::<Vec<_>>());
            let mut q: DCboQueue<i32, S> = QueueBuilder::new(1).seed(3).d_cbo_on();
            for i in 0..200 {
                RelaxedFifo::enqueue(&mut q, i);
            }
            assert_eq!(drain(&mut q), (0..200).collect::<Vec<_>>());
        }
        check::<MutexSub<i32>>();
        check::<MsQueue<i32>>();
        check::<SegRingQueue<i32>>();
        check::<crate::lockfree::FaaRingQueue<i32>>();
    }

    #[test]
    fn dra_conserves_items_under_mixed_ops() {
        let mut q = QueueBuilder::new(8).seed(11).d_ra();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut pushed = 0u64;
        let mut got = Vec::new();
        for _ in 0..10_000 {
            if rng.gen_range(0..3) > 0 {
                RelaxedFifo::enqueue(&mut q, pushed);
                pushed += 1;
            } else if let Some(v) = RelaxedFifo::dequeue(&mut q) {
                got.push(v);
            }
        }
        got.extend(drain(&mut q));
        got.sort_unstable();
        assert_eq!(got, (0..pushed).collect::<Vec<_>>());
    }

    #[test]
    fn backend_matrix_conserves_items_under_mixed_ops() {
        fn check<S: SubFifo<u64>>(name: &str) {
            let mut dra: DRaQueue<u64, S> = QueueBuilder::new(6).seed(11).d_ra_on();
            let mut dcbo: DCboQueue<u64, S> = QueueBuilder::new(6).seed(11).d_cbo_on();
            let mut rng = SmallRng::seed_from_u64(5);
            let mut pushed = 0u64;
            let mut got_dra = Vec::new();
            let mut got_dcbo = Vec::new();
            for _ in 0..5_000 {
                if rng.gen_range(0..3) > 0 {
                    RelaxedFifo::enqueue(&mut dra, pushed);
                    RelaxedFifo::enqueue(&mut dcbo, pushed);
                    pushed += 1;
                } else {
                    if let Some(v) = RelaxedFifo::dequeue(&mut dra) {
                        got_dra.push(v);
                    }
                    if let Some(v) = RelaxedFifo::dequeue(&mut dcbo) {
                        got_dcbo.push(v);
                    }
                }
            }
            got_dra.extend(drain(&mut dra));
            got_dcbo.extend(drain(&mut dcbo));
            got_dra.sort_unstable();
            got_dcbo.sort_unstable();
            let want: Vec<u64> = (0..pushed).collect();
            assert_eq!(got_dra, want, "{name}: d-RA lost or duplicated items");
            assert_eq!(got_dcbo, want, "{name}: d-CBO lost or duplicated items");
        }
        check::<MutexSub<u64>>("mutex");
        check::<MsQueue<u64>>("ms");
        check::<SegRingQueue<u64>>("segring");
        check::<crate::lockfree::FaaRingQueue<u64>>("faa");
    }

    #[test]
    fn choice_of_two_beats_random_placement() {
        // d = 2 should give a substantially smaller mean rank error than
        // d = 1 (pure random) on the same workload shape.
        let mean_for = |d: usize| {
            let mut q = FifoRankTracker::new(QueueBuilder::new(16).choices(d).seed(77).d_ra());
            for i in 0..20_000 {
                q.enqueue(i);
            }
            while q.dequeue().is_some() {}
            q.stats().mean_error()
        };
        let random = mean_for(1);
        let two = mean_for(2);
        assert!(
            two < random,
            "choice-of-two error {two} not below random {random}"
        );
    }

    #[test]
    fn dcbo_sequential_interface_tracks_errors() {
        let mut q = FifoRankTracker::new(QueueBuilder::new(8).seed(21).d_cbo());
        for i in 0..5_000 {
            q.enqueue(i);
        }
        while q.dequeue().is_some() {}
        let s = q.stats();
        assert_eq!(s.dequeues, 5_000);
        // Balanced operations keep the error around the shard count.
        assert!(
            s.mean_error() <= 4.0 * 8.0,
            "d-CBO mean error {} far beyond shards",
            s.mean_error()
        );
    }

    #[test]
    fn dcbo_concurrent_no_loss_no_duplication() {
        use std::sync::Arc;
        let q: Arc<DCboQueue<usize>> = Arc::new(QueueBuilder::new(6).seed(3).d_cbo());
        let threads = 8;
        let per = 5_000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                    let mut got = Vec::new();
                    for i in 0..per {
                        q.enqueue(t * per + i, &mut rng);
                        if i % 2 == 0 {
                            if let Some(v) = q.dequeue(&mut rng) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut rng = SmallRng::seed_from_u64(0);
        while let Some(v) = q.dequeue(&mut rng) {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..threads * per).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn dra_concurrent_no_loss_no_duplication() {
        use std::sync::Arc;
        let q: Arc<DRaQueue<usize>> = Arc::new(QueueBuilder::new(6).seed(3).d_ra());
        let threads = 8;
        let per = 5_000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                    let mut got = Vec::new();
                    for i in 0..per {
                        q.enqueue(t * per + i, &mut rng);
                        if i % 2 == 0 {
                            if let Some(v) = q.dequeue(&mut rng) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut rng = SmallRng::seed_from_u64(0);
        while let Some(v) = q.dequeue(&mut rng) {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..threads * per).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn dcbo_home_shard_pops_are_not_steals() {
        // A single worker draining with affinity takes mostly from its
        // home shard at first; the flag distinguishes home from foreign.
        let q: DCboQueue<u64> = QueueBuilder::new(4).seed(9).d_cbo();
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..100 {
            q.enqueue(i, &mut rng);
        }
        let mut home_pops = 0;
        let mut steals = 0;
        while let Some((_, stolen)) = q.dequeue_from(1, &mut rng) {
            if stolen {
                steals += 1;
            } else {
                home_pops += 1;
            }
        }
        assert_eq!(home_pops + steals, 100);
        assert!(home_pops > 0, "home shard never drained");
        assert!(steals > 0, "foreign shards never drained");
    }

    #[test]
    fn session_ops_conserve_items_across_threads() {
        use std::sync::Arc;
        let q: Arc<DCboQueue<usize>> = Arc::new(QueueBuilder::new(4).seed(17).d_cbo());
        let threads = 4;
        let per = 2_000usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut session = q.session(&SessionConfig {
                        spawn_batch: 8,
                        ..SessionConfig::for_worker(t, threads)
                    });
                    for i in 0..per {
                        q.push_session(t * per + i, &mut session);
                    }
                    let rep = q.flush_session(&mut session);
                    assert_eq!(rep.merged, 0, "FIFO flushes never merge");
                });
            }
        });
        let mut drain = q.session(&SessionConfig::unaffine(3));
        let mut seen = std::collections::HashSet::new();
        while let Some((v, src)) = q.pop_session(&mut drain) {
            assert_eq!(src, PopSource::Shared, "unaffine session pops are Shared");
            assert!(seen.insert(v), "duplicate {v}");
        }
        assert_eq!(seen.len(), threads * per);
    }

    #[test]
    fn session_batched_pushes_publish_on_flush() {
        let q: DCboQueue<u64> = QueueBuilder::new(4).seed(5).d_cbo();
        let mut s = q.session(&SessionConfig {
            spawn_batch: 16,
            ..SessionConfig::for_worker(0, 1)
        });
        for i in 0..15u64 {
            let out = q.push_session(i, &mut s);
            assert_eq!(out.push, SessionPush::Buffered);
            assert_eq!(out.flushed, FlushReport::default());
        }
        assert_eq!(s.buffered(), 15);
        assert_eq!(q.len(), 0, "parked spawns are invisible");
        // The 16th push fills the buffer and auto-flushes the batch.
        let out = q.push_session(15, &mut s);
        assert_eq!(out.flushed.published, 16);
        assert_eq!(s.buffered(), 0);
        assert_eq!(q.len(), 16);
        // An explicit flush of an empty buffer is a no-op.
        assert_eq!(q.flush_session(&mut s), FlushReport::default());
    }

    #[test]
    fn adaptive_session_grows_on_home_hits_and_shrinks_on_misses() {
        // Worker 0 of 1 owning all 4 shards: every successful pop is a
        // Home hit, so the adaptive ladder is fully deterministic.
        let q: DCboQueue<u64> = QueueBuilder::new(4).seed(5).d_cbo();
        let mut s = q.session(&SessionConfig {
            spawn_batch: 8,
            adaptive_spawn: true,
            shards_per_worker: 4,
            ..SessionConfig::for_worker(0, 1)
        });
        assert_eq!(s.spawn_batch(), 1, "adaptive sessions start unbatched");
        // Unbatched pushes publish immediately, as spawn_batch=1 does.
        assert_eq!(q.push_session(0, &mut s).push, SessionPush::Inserted);
        let (_, src) = q.pop_session(&mut s).unwrap();
        assert_eq!(src, PopSource::Home);
        assert_eq!(s.spawn_batch(), 2, "a home hit doubles the threshold");
        // Three more hits climb 2 → 4 → 8 and saturate at the ceiling.
        for _ in 0..3 {
            q.push_session(1, &mut s);
            q.flush_session(&mut s);
            let (_, src) = q.pop_session(&mut s).unwrap();
            assert_eq!(src, PopSource::Home);
        }
        assert_eq!(s.spawn_batch(), 8, "growth is capped at spawn_batch");
        // Pop misses halve toward 1: near quiescence the session must
        // not park spawns invisibly.
        assert!(q.pop_session(&mut s).is_none());
        assert_eq!(s.spawn_batch(), 4, "a miss halves the threshold");
        for _ in 0..3 {
            assert!(q.pop_session(&mut s).is_none());
        }
        assert_eq!(s.spawn_batch(), 1, "misses shrink back to unbatched");
        // Without the flag the threshold never moves off the config.
        let fixed: DCboQueue<u64> = QueueBuilder::new(4).seed(5).d_cbo();
        let mut f = fixed.session(&SessionConfig {
            spawn_batch: 8,
            shards_per_worker: 4,
            ..SessionConfig::for_worker(0, 1)
        });
        assert_eq!(f.spawn_batch(), 8);
        assert!(fixed.pop_session(&mut f).is_none());
        assert_eq!(f.spawn_batch(), 8, "fixed sessions ignore the signal");
    }

    #[test]
    fn session_home_pops_drain_home_first() {
        // One worker owning 2 of 4 shards: everything it pushed through
        // immediate (unbatched) publication is spread over shards, so
        // draining must report both Home and Steal pops, never Shared.
        let q: DCboQueue<u64> = QueueBuilder::new(4).seed(9).d_cbo();
        let cfg = SessionConfig {
            shards_per_worker: 2,
            ..SessionConfig::for_worker(1, 2)
        };
        let mut s = q.session(&cfg);
        assert_eq!(s.homes(), &[1, 3], "strided home assignment");
        for i in 0..200u64 {
            q.push_session(i, &mut s);
        }
        let (mut homes, mut steals) = (0u32, 0u32);
        while let Some((_, src)) = q.pop_session(&mut s) {
            match src {
                PopSource::Home => homes += 1,
                PopSource::Steal => steals += 1,
                PopSource::Shared => panic!("affine session reported Shared"),
            }
        }
        assert_eq!(homes + steals, 200);
        assert!(homes > 0, "home shards never drained first");
        assert!(steals > 0, "foreign shards never stolen from");
    }

    #[test]
    fn dra_session_batch_keeps_fifo_exact_on_one_shard() {
        // A single shard is an exact FIFO even through batched flushes:
        // batches preserve buffer order and stamp order.
        let q: DRaQueue<u64> = QueueBuilder::new(1).seed(3).d_ra();
        let mut s = q.session(&SessionConfig {
            spawn_batch: 7,
            ..SessionConfig::for_worker(0, 1)
        });
        for i in 0..100u64 {
            q.push_session(i, &mut s);
        }
        q.flush_session(&mut s);
        let mut got = Vec::new();
        while let Some((v, _)) = q.pop_session(&mut s) {
            got.push(v);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
