//! Relaxed FIFO queues built on the random choice of two.
//!
//! A **relaxed FIFO** may dequeue *one of the oldest* items instead of
//! necessarily the oldest. For a relaxed dequeue of item `x`, the number
//! of items still in the queue that were enqueued before `x` is the
//! **rank error** — the FIFO analogue of the priority-queue rank the
//! [`RankTracker`](crate::instrument::RankTracker) measures. Relaxation
//! buys scalability: sub-FIFOs are contended independently, and the
//! choice-of-two rule keeps the error envelope logarithmically tight in
//! the spirit of balanced allocations (Azar et al.), exactly as the
//! MultiQueue does for priorities.
//!
//! Two family members, mirroring the d-RA / d-CBO line of relaxed-FIFO
//! designs (see `relaxed-queue-simulations` and the PPoPP 2025 d-CBO
//! paper referenced in SNIPPETS.md):
//!
//! * [`DRaQueue`] — sequential-model **d-RA**: `d` random sub-queue
//!   samples per operation; enqueue goes to the shortest sampled
//!   sub-queue (balanced allocation on *lengths*), dequeue takes the
//!   oldest head among the sampled sub-queues.
//! * [`DCboQueue`] — concurrent **d-CBO** (*choice of balanced
//!   operations*): every shard counts its completed enqueues and
//!   dequeues; enqueue goes to the sampled shard with the fewest
//!   enqueues, dequeue pops the sampled shard with the fewest dequeues.
//!   Because both counters stay balanced, shard heads age at nearly the
//!   same rate and popping the least-dequeued shard approximates global
//!   FIFO order — without reading any item timestamps, which is what
//!   makes the concurrent version cheap (two atomic loads per choice).
//!
//! [`FifoRankTracker`] wraps any [`RelaxedFifo`] and measures empirical
//! rank errors against a shadow order, mirroring the priority-queue
//! instrumentation in [`instrument`](crate::instrument).

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A queue with relaxed FIFO semantics (sequential interface).
///
/// Dequeue returns *one of the oldest* items; how far from the oldest is
/// bounded by the structure's relaxation. The concurrent members of the
/// family ([`DCboQueue`]) additionally expose `&self` operations for the
/// runtime; this trait is the sequential-model surface shared by every
/// member, used for simulation and instrumentation.
pub trait RelaxedFifo<T> {
    /// Append `item` (relaxed tail position).
    fn enqueue(&mut self, item: T);

    /// Remove one of the oldest items, or `None` if empty.
    fn dequeue(&mut self) -> Option<T>;

    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` if no items are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of internal sub-queues — the scale parameter of the rank
    /// error envelope (1 = exact FIFO).
    fn subqueues(&self) -> usize;
}

/// Sequential d-RA relaxed FIFO: `d` random choices over sub-FIFOs.
///
/// Enqueue samples `d` sub-queues uniformly and appends to the
/// *shortest*; dequeue samples `d` sub-queues and removes the *oldest
/// head* among them (ties impossible: arrival numbers are unique). With
/// `d = 1` both rules degenerate to uniform random placement/removal;
/// with one sub-queue the structure is an exact FIFO.
///
/// # Examples
///
/// ```
/// use rsched_queues::fifo::{DRaQueue, RelaxedFifo};
///
/// let mut q = DRaQueue::choice_of_two(8, 42);
/// for i in 0..100 {
///     q.enqueue(i);
/// }
/// let first = q.dequeue().unwrap();
/// // Relaxed: one of the oldest items, not necessarily item 0.
/// assert!(first < 100);
/// assert_eq!(q.len(), 99);
/// ```
#[derive(Clone, Debug)]
pub struct DRaQueue<T> {
    subs: Vec<VecDeque<(u64, T)>>,
    /// Next arrival number (unique, monotone).
    arrivals: u64,
    d: usize,
    rng: SmallRng,
    len: usize,
}

impl<T> DRaQueue<T> {
    /// `subqueues` sub-FIFOs with `d` choices per operation.
    pub fn new(subqueues: usize, d: usize, seed: u64) -> Self {
        assert!(subqueues > 0, "d-RA needs at least one sub-queue");
        assert!(d >= 1, "d-RA needs at least one choice");
        Self {
            subs: (0..subqueues).map(|_| VecDeque::new()).collect(),
            arrivals: 0,
            d,
            rng: SmallRng::seed_from_u64(seed),
            len: 0,
        }
    }

    /// The classic two-choice configuration.
    pub fn choice_of_two(subqueues: usize, seed: u64) -> Self {
        Self::new(subqueues, 2, seed)
    }

    /// The number of choices `d`.
    pub fn choices(&self) -> usize {
        self.d
    }

    fn sample(&mut self) -> usize {
        let q = self.subs.len();
        self.rng.gen_range(0..q)
    }
}

impl<T> RelaxedFifo<T> for DRaQueue<T> {
    fn enqueue(&mut self, item: T) {
        let mut best = self.sample();
        for _ in 1..self.d {
            let c = self.sample();
            if self.subs[c].len() < self.subs[best].len() {
                best = c;
            }
        }
        let seq = self.arrivals;
        self.arrivals += 1;
        self.subs[best].push_back((seq, item));
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for _ in 0..self.d {
            let c = self.sample();
            match (
                self.subs[c].front(),
                best.and_then(|b| self.subs[b].front()),
            ) {
                (Some((seq, _)), Some((bseq, _))) if seq < bseq => best = Some(c),
                (Some(_), None) => best = Some(c),
                _ => {}
            }
        }
        // All samples hit empty sub-queues: fall back to the oldest head
        // overall so a non-empty queue never reports empty.
        let best = best.unwrap_or_else(|| {
            (0..self.subs.len())
                .filter(|&i| !self.subs[i].is_empty())
                .min_by_key(|&i| self.subs[i].front().expect("non-empty").0)
                .expect("len > 0 implies a non-empty sub-queue")
        });
        let (_, item) = self.subs[best].pop_front().expect("chosen head vanished");
        self.len -= 1;
        Some(item)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn subqueues(&self) -> usize {
        self.subs.len()
    }
}

/// Largest supported `d` for [`DCboQueue`] (dequeue candidate buffers are
/// stack-allocated at this size).
const MAX_CHOICES: usize = 8;

/// One shard of a [`DCboQueue`]: a locked sub-FIFO plus its completed
/// operation counters. Counters are read before locking (the choice is a
/// heuristic; slight staleness only costs rank error, never correctness).
#[derive(Debug)]
struct CboShard<T> {
    fifo: Mutex<VecDeque<T>>,
    enqueues: AtomicU64,
    dequeues: AtomicU64,
}

/// Concurrent d-CBO relaxed FIFO: choice of two by balanced operation
/// counts over locked sub-FIFO shards.
///
/// `enqueue` samples `d` shards and appends to the one with the fewest
/// *completed enqueues*; `dequeue` samples `d` shards and pops the one
/// with the fewest *completed dequeues* (skipping empty shards). `None`
/// is returned only after a full sweep found every shard empty — like
/// the workspace's other concurrent queues this is a hint, not a
/// linearizable emptiness check, and callers own termination detection.
///
/// # Examples
///
/// ```
/// use rsched_queues::fifo::DCboQueue;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let q = DCboQueue::new(8, 1);
/// let mut rng = SmallRng::seed_from_u64(9);
/// for i in 0..100u64 {
///     q.enqueue(i, &mut rng);
/// }
/// assert_eq!(q.len(), 100);
/// let mut popped = Vec::new();
/// while let Some(v) = q.dequeue(&mut rng) {
///     popped.push(v);
/// }
/// popped.sort_unstable();
/// assert_eq!(popped, (0..100).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct DCboQueue<T> {
    shards: Box<[CachePadded<CboShard<T>>]>,
    len: AtomicUsize,
    d: usize,
    /// RNG for the sequential [`RelaxedFifo`] interface only; the
    /// concurrent operations take the caller's RNG.
    seq_rng: Mutex<SmallRng>,
}

impl<T: Send> DCboQueue<T> {
    /// `shards` sub-FIFOs with the classic two choices per operation.
    pub fn new(shards: usize, seed: u64) -> Self {
        Self::with_choice(shards, 2, seed)
    }

    /// Largest supported choice count `d` (the dequeue candidate buffer
    /// is stack-allocated at this size).
    pub const MAX_CHOICES: usize = MAX_CHOICES;

    /// `shards` sub-FIFOs with `d` choices per operation
    /// (`1 ..= MAX_CHOICES`).
    pub fn with_choice(shards: usize, d: usize, seed: u64) -> Self {
        assert!(shards > 0, "d-CBO needs at least one shard");
        assert!(
            (1..=Self::MAX_CHOICES).contains(&d),
            "d-CBO supports 1..={} choices, got {d}",
            Self::MAX_CHOICES
        );
        Self {
            shards: (0..shards)
                .map(|_| {
                    CachePadded::new(CboShard {
                        fifo: Mutex::new(VecDeque::new()),
                        enqueues: AtomicU64::new(0),
                        dequeues: AtomicU64::new(0),
                    })
                })
                .collect(),
            len: AtomicUsize::new(0),
            d,
            seq_rng: Mutex::new(SmallRng::seed_from_u64(seed ^ 0xD_CB0)),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of stored items (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// `true` if empty (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `item` to the sampled shard with the fewest completed
    /// enqueues.
    pub fn enqueue<R: Rng>(&self, item: T, rng: &mut R) {
        let q = self.shards.len();
        let mut best = rng.gen_range(0..q);
        for _ in 1..self.d {
            let c = rng.gen_range(0..q);
            if self.shards[c].enqueues.load(Ordering::Relaxed)
                < self.shards[best].enqueues.load(Ordering::Relaxed)
            {
                best = c;
            }
        }
        let shard = &self.shards[best];
        shard.fifo.lock().push_back(item);
        shard.enqueues.fetch_add(1, Ordering::Relaxed);
        self.len.fetch_add(1, Ordering::AcqRel);
    }

    /// Pop from the sampled shard with the fewest completed dequeues;
    /// `None` only after a full sweep found every shard empty.
    pub fn dequeue<R: Rng>(&self, rng: &mut R) -> Option<T> {
        self.dequeue_from(usize::MAX, rng).map(|(item, _)| item)
    }

    /// Worker-affine dequeue for the runtime: shard `home % shards` is
    /// always one of the candidates, so an uncontended worker keeps
    /// draining its own shard; the other `d - 1` samples are uniform and
    /// win only when their shard is *behind* on dequeues (its heads are
    /// older). The returned flag is `true` when the element came from a
    /// foreign shard — a steal. Pass `usize::MAX` for no affinity.
    pub fn dequeue_from<R: Rng>(&self, home: usize, rng: &mut R) -> Option<(T, bool)> {
        let q = self.shards.len();
        let home = if home == usize::MAX {
            None
        } else {
            Some(home % q)
        };
        // Optimistic two-choice rounds with try_lock, like the multiqueue.
        for round in 0..(2 * q + 4) {
            let mut candidates = [0usize; MAX_CHOICES];
            let d = self.d;
            for (i, c) in candidates.iter_mut().take(d).enumerate() {
                *c = match (home, i, round) {
                    // Home shard participates in the first round's choice;
                    // later rounds go fully random to escape an empty home.
                    (Some(h), 0, 0) => h,
                    _ => rng.gen_range(0..q),
                };
            }
            let mut order: Vec<usize> = candidates[..d].to_vec();
            order.sort_by_key(|&c| self.shards[c].dequeues.load(Ordering::Relaxed));
            order.dedup();
            for &c in &order {
                let Some(mut fifo) = self.shards[c].fifo.try_lock() else {
                    continue;
                };
                if let Some(item) = fifo.pop_front() {
                    drop(fifo);
                    self.shards[c].dequeues.fetch_add(1, Ordering::Relaxed);
                    self.len.fetch_sub(1, Ordering::AcqRel);
                    return Some((item, home.is_some_and(|h| h != c)));
                }
            }
            if self.len.load(Ordering::Acquire) == 0 {
                break;
            }
        }
        // Fallback sweep: visit every shard once, blocking on its lock.
        for (c, shard) in self.shards.iter().enumerate() {
            let mut fifo = shard.fifo.lock();
            if let Some(item) = fifo.pop_front() {
                drop(fifo);
                shard.dequeues.fetch_add(1, Ordering::Relaxed);
                self.len.fetch_sub(1, Ordering::AcqRel);
                return Some((item, home.is_some_and(|h| h != c)));
            }
        }
        None
    }
}

impl<T: Send> RelaxedFifo<T> for DCboQueue<T> {
    fn enqueue(&mut self, item: T) {
        let this = &*self;
        let mut rng = this.seq_rng.lock();
        DCboQueue::enqueue(this, item, &mut *rng);
    }

    fn dequeue(&mut self) -> Option<T> {
        let this = &*self;
        let mut rng = this.seq_rng.lock();
        DCboQueue::dequeue(this, &mut *rng)
    }

    fn len(&self) -> usize {
        DCboQueue::len(self)
    }

    fn subqueues(&self) -> usize {
        self.num_shards()
    }
}

/// Aggregated FIFO rank-error statistics.
#[derive(Clone, Debug, Default)]
pub struct FifoRankStats {
    /// Number of successful dequeues measured.
    pub dequeues: u64,
    /// Largest observed rank error (0 = exact FIFO).
    pub max_error: u64,
    /// Sum of observed rank errors (for the mean).
    pub sum_error: u128,
    /// `hist[e]` = dequeues with rank error `e`; errors beyond the
    /// histogram length land in the last bucket.
    pub hist: Vec<u64>,
}

impl FifoRankStats {
    const HIST_BUCKETS: usize = 1024;

    /// Mean rank error (0.0 = always exact).
    pub fn mean_error(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.sum_error as f64 / self.dequeues as f64
        }
    }

    /// Fraction of dequeues that returned the exact oldest item.
    pub fn exact_fraction(&self) -> f64 {
        if self.dequeues == 0 {
            return 0.0;
        }
        self.hist.first().copied().unwrap_or(0) as f64 / self.dequeues as f64
    }

    /// The `q`-quantile (e.g. `0.99`) of the rank-error distribution.
    pub fn error_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        let target = (self.dequeues as f64 * q).ceil() as u64;
        let mut acc = 0u64;
        for (e, &c) in self.hist.iter().enumerate() {
            acc += c;
            if acc >= target {
                return e as u64;
            }
        }
        self.max_error
    }

    fn record(&mut self, error: u64) {
        if self.hist.is_empty() {
            self.hist = vec![0; Self::HIST_BUCKETS];
        }
        self.dequeues += 1;
        self.max_error = self.max_error.max(error);
        self.sum_error += error as u128;
        self.hist[(error as usize).min(Self::HIST_BUCKETS - 1)] += 1;
    }
}

/// A [`RelaxedFifo`] decorator measuring empirical rank errors.
///
/// Items are stamped with a global arrival number on enqueue; on dequeue
/// the error is the count of still-queued items with smaller stamps —
/// the definition from the relaxed-FIFO literature ("the number of items
/// currently in the queue which were inserted before x").
///
/// # Examples
///
/// ```
/// use rsched_queues::fifo::{DRaQueue, FifoRankTracker, RelaxedFifo};
///
/// let mut q = FifoRankTracker::new(DRaQueue::choice_of_two(4, 7));
/// for i in 0..1000 {
///     q.enqueue(i);
/// }
/// while q.dequeue().is_some() {}
/// let s = q.stats();
/// assert_eq!(s.dequeues, 1000);
/// assert!(s.mean_error() < 4.0 * 4.0, "choice-of-two keeps errors near q");
/// ```
#[derive(Clone, Debug)]
pub struct FifoRankTracker<T, Q: RelaxedFifo<(u64, T)>> {
    inner: Q,
    next: u64,
    live: BTreeSet<u64>,
    stats: FifoRankStats,
    _item: std::marker::PhantomData<T>,
}

impl<T, Q: RelaxedFifo<(u64, T)>> FifoRankTracker<T, Q> {
    /// Wrap `inner`; the tracker starts empty, so wrap before filling.
    pub fn new(inner: Q) -> Self {
        assert!(inner.is_empty(), "wrap the queue before filling it");
        Self {
            inner,
            next: 0,
            live: BTreeSet::new(),
            stats: FifoRankStats::default(),
            _item: std::marker::PhantomData,
        }
    }

    /// The collected statistics so far.
    pub fn stats(&self) -> &FifoRankStats {
        &self.stats
    }

    /// Consume the tracker, returning the inner queue and the statistics.
    pub fn into_parts(self) -> (Q, FifoRankStats) {
        (self.inner, self.stats)
    }
}

impl<T, Q: RelaxedFifo<(u64, T)>> RelaxedFifo<T> for FifoRankTracker<T, Q> {
    fn enqueue(&mut self, item: T) {
        let seq = self.next;
        self.next += 1;
        self.live.insert(seq);
        self.inner.enqueue((seq, item));
    }

    fn dequeue(&mut self) -> Option<T> {
        let (seq, item) = self.inner.dequeue()?;
        let error = self.live.range(..seq).count() as u64;
        let removed = self.live.remove(&seq);
        debug_assert!(removed, "dequeued an item the shadow does not hold");
        self.stats.record(error);
        Some(item)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn subqueues(&self) -> usize {
        self.inner.subqueues()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T, Q: RelaxedFifo<T>>(q: &mut Q) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = q.dequeue() {
            out.push(v);
        }
        out
    }

    #[test]
    fn single_subqueue_is_exact_fifo() {
        let mut q = DRaQueue::choice_of_two(1, 3);
        for i in 0..500 {
            q.enqueue(i);
        }
        assert_eq!(drain(&mut q), (0..500).collect::<Vec<_>>());

        let mut q = FifoRankTracker::new(DRaQueue::choice_of_two(1, 3));
        for i in 0..500 {
            q.enqueue(i);
        }
        drain(&mut q);
        assert_eq!(q.stats().max_error, 0, "one sub-queue is exact");
        assert_eq!(q.stats().exact_fraction(), 1.0);
    }

    #[test]
    fn dra_conserves_items_under_mixed_ops() {
        let mut q = DRaQueue::new(8, 2, 11);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut pushed = 0u64;
        let mut got = Vec::new();
        for _ in 0..10_000 {
            if rng.gen_range(0..3) > 0 {
                q.enqueue(pushed);
                pushed += 1;
            } else if let Some(v) = q.dequeue() {
                got.push(v);
            }
        }
        got.extend(drain(&mut q));
        got.sort_unstable();
        assert_eq!(got, (0..pushed).collect::<Vec<_>>());
    }

    #[test]
    fn choice_of_two_beats_random_placement() {
        // d = 2 should give a substantially smaller mean rank error than
        // d = 1 (pure random) on the same workload shape.
        let mean_for = |d: usize| {
            let mut q = FifoRankTracker::new(DRaQueue::new(16, d, 77));
            for i in 0..20_000 {
                q.enqueue(i);
            }
            while q.dequeue().is_some() {}
            q.stats().mean_error()
        };
        let random = mean_for(1);
        let two = mean_for(2);
        assert!(
            two < random,
            "choice-of-two error {two} not below random {random}"
        );
    }

    #[test]
    fn dcbo_sequential_interface_tracks_errors() {
        let mut q = FifoRankTracker::new(DCboQueue::new(8, 21));
        for i in 0..5_000 {
            q.enqueue(i);
        }
        while q.dequeue().is_some() {}
        let s = q.stats();
        assert_eq!(s.dequeues, 5_000);
        // Balanced operations keep the error around the shard count.
        assert!(
            s.mean_error() <= 4.0 * 8.0,
            "d-CBO mean error {} far beyond shards",
            s.mean_error()
        );
    }

    #[test]
    fn dcbo_concurrent_no_loss_no_duplication() {
        use std::sync::Arc;
        let q: Arc<DCboQueue<usize>> = Arc::new(DCboQueue::new(6, 3));
        let threads = 8;
        let per = 5_000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                    let mut got = Vec::new();
                    for i in 0..per {
                        q.enqueue(t * per + i, &mut rng);
                        if i % 2 == 0 {
                            if let Some(v) = q.dequeue(&mut rng) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut rng = SmallRng::seed_from_u64(0);
        while let Some(v) = q.dequeue(&mut rng) {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..threads * per).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn dcbo_home_shard_pops_are_not_steals() {
        // A single worker draining with affinity takes mostly from its
        // home shard at first; the flag distinguishes home from foreign.
        let q: DCboQueue<u64> = DCboQueue::new(4, 9);
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..100 {
            q.enqueue(i, &mut rng);
        }
        let mut home_pops = 0;
        let mut steals = 0;
        while let Some((_, stolen)) = q.dequeue_from(1, &mut rng) {
            if stolen {
                steals += 1;
            } else {
                home_pops += 1;
            }
        }
        assert_eq!(home_pops + steals, 100);
        assert!(home_pops > 0, "home shard never drained");
        assert!(steals > 0, "foreign shards never drained");
    }
}
