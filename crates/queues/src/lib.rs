//! # rsched-queues — exact and relaxed priority queues
//!
//! This crate provides the priority-queue substrate for the relaxed-scheduling
//! model of Alistarh, Koval and Nadiradze, *"Efficiency Guarantees for Parallel
//! Incremental Algorithms under Relaxed Schedulers"* (SPAA 2019).
//!
//! It contains:
//!
//! * **Exact** priority queues with `DecreaseKey`: an indexed binary heap
//!   ([`heap::IndexedBinaryHeap`]) and a pairing heap ([`pairing::PairingHeap`]).
//! * **Relaxed** priority queues, i.e. schedulers that may return one of the
//!   `k` highest-priority elements instead of the exact minimum:
//!   - [`multiqueue::SimMultiQueue`]: the sequential-model MultiQueue
//!     (insert into a random queue, pop the better of two random tops),
//!     exactly the structure analysed in Section 5 of the paper;
//!   - [`multiqueue::ConcurrentMultiQueue`]: a thread-safe MultiQueue
//!     with consistent hashing of items to shards so that `decrease_key`
//!     is supported (required by the paper's SSSP, Section 6), generic
//!     over its per-shard backend — lock-free skiplist by default, mutex
//!     heap as the baseline (see the shard-backend section below);
//!   - [`spraylist::SprayList`]: a skip-list based relaxed queue whose
//!     `pop_relaxed` performs a "spray" random walk, following the SprayList
//!     of Alistarh et al. (PPoPP 2015);
//!   - [`kbounded::RotatingKQueue`]: a *deterministic* k-relaxed queue that
//!     provably satisfies the paper's RankBound and Fairness properties
//!     (in the spirit of deterministic structures such as the k-LSM).
//! * **Relaxed FIFO queues** ([`fifo`]): the choice-of-two relaxed FIFO
//!   family — [`fifo::DRaQueue`] (d random choices over sub-FIFOs,
//!   oldest-visible-head dequeues) and [`fifo::DCboQueue`] (d-CBO:
//!   choice by balanced operation counts over sharded sub-FIFOs), both
//!   concurrent and both behind the sequential [`fifo::RelaxedFifo`]
//!   trait. These feed the `rsched-runtime` worker pool for FIFO-ordered
//!   workloads (BFS frontiers, k-core peeling).
//! * **Lock-free sub-queues** ([`lockfree`]): the shard backends of the
//!   FIFO family — a Michael–Scott linked queue
//!   ([`lockfree::MsQueue`]), a CAS-claimed segmented ring buffer
//!   ([`lockfree::SegRingQueue`], the default) and its fetch-add
//!   claimed CRQ-style variant ([`lockfree::FaaRingQueue`]), reclaimed
//!   through the epoch scheme in `crossbeam::epoch`, selectable per
//!   queue through [`fifo::SubFifo`] (with [`fifo::MutexSub`] as the
//!   locked baseline).
//! * **Lock-free priority shards** ([`skipshard`]): the shard backends
//!   of the concurrent MultiQueue — an epoch-reclaimed Harris-style
//!   skiplist ([`skipshard::SkipShard`], the default), the
//!   mutex-around-a-heap baseline ([`skipshard::MutexHeapSub`]) and the
//!   flat-combining heap ([`flatcomb::FcHeapSub`]), selectable through
//!   [`skipshard::SubPriority`].
//! * **The bucketed hybrid** ([`bucket`]): [`bucket::BucketFifoQueue`],
//!   a relaxed FIFO *of buckets* (Δ-wide priority bands, popped
//!   oldest-visible) where each bucket is itself a relaxed priority
//!   shard set over the same [`skipshard::SubPriority`] backends — the
//!   Δ-stepping unification of the FIFO and priority engines.
//! * **Instrumentation**: [`instrument::RankTracker`] wraps any relaxed queue
//!   and measures the empirical rank of every returned element and the
//!   inversion count of every element that becomes the global minimum,
//!   validating the paper's RankBound (`rank(t) <= k`) and Fairness
//!   (`inv(u) <= k - 1`) properties; [`fifo::FifoRankTracker`] is the FIFO
//!   analogue, measuring rank errors (items overtaken per dequeue), and
//!   [`instrument::ConcurrentRankEstimator`] estimates FIFO rank errors
//!   under real thread contention via timestamp replay.
//!
//! ## The interface
//!
//! The paper models a relaxed scheduler `Q_k` as an ordered-set data structure
//! with `Empty()`, `ApproxGetMin()` (peek without deleting), `DeleteTask()`
//! and `Insert()` (Section 2). [`RelaxedQueue`] mirrors this interface and
//! adds `decrease_key`, which Section 6 requires for SSSP and which
//! MultiQueue-style schedulers support by hashing items consistently into
//! their internal queues.
//!
//! Items are dense `usize` identifiers (vertex ids, task labels, …) and
//! priorities are any `Ord + Copy` type; ties are broken by item id so every
//! queue has a single deterministic total order, which is what the
//! instrumentation layer measures ranks against.
//!
//! ## Architecture: shard backends below, worker sessions above
//!
//! Every concurrent relaxed structure in this crate has the same shape:
//! a **composition layer** that owns the relaxation policy, over an
//! array of **shards** that own the synchronization. The composition
//! layer picks shards (two random choices, balanced counters, keyed
//! hashing), compares cheap per-shard summaries (head stamp, minimum
//! key), and claims from the winner; the shard provides those primitives
//! behind one of two parallel traits:
//!
//! * [`fifo::SubFifo`] — FIFO shards: `push`/`try_pop`/`pop_wait` plus
//!   the racy-safe [`head_seq`](fifo::SubFifo::head_seq) peek.
//!   Composed by [`DRaQueue`] and [`DCboQueue`].
//! * [`skipshard::SubPriority`] — priority shards: `push_or_decrease` /
//!   `try_pop_min` / `remove` / `decrease_key` plus the racy-safe
//!   [`min_key`](skipshard::SubPriority::min_key) peek.
//!   Composed by [`ConcurrentMultiQueue`] and [`BucketFifoQueue`].
//!
//! The backend table — how each shard wins its regime:
//!
//! | backend | trait | synchronization | claim cost | regime |
//! |---|---|---|---|---|
//! | [`MutexSub`] | `SubFifo` | mutex over `VecDeque` | lock | uncontended / few threads |
//! | [`MsQueue`] | `SubFifo` | Michael–Scott CAS list | head CAS retry loop | unbounded size, moderate contention |
//! | [`SegRingQueue`] (default) | `SubFifo` | segmented ring, CAS-claimed slots | slot CAS retry loop | steady churn, allocation-free |
//! | [`FaaRingQueue`] | `SubFifo` | segmented ring, fetch-add-claimed slots | **one `fetch_add`** (publish-or-skip arbitration) | popper/popper contention — the CAS convoy case |
//! | [`MutexHeapSub`] | `SubPriority` | mutex over indexed heap | lock | uncontended / few threads |
//! | [`SkipShard`] (default) | `SubPriority` | Harris skiplist + registry | mark-bit CAS | multicore contention, oversubscription |
//! | [`FcHeapSub`] | `SubPriority` | **flat combining** over indexed heap | publish + one combining round | lock-convoy thread counts |
//!
//! ### The flat-combining layer
//!
//! [`flatcomb::FcHeapSub`] is the odd one out: neither a lock-free
//! structure nor a plain locked one, it keeps the *sequential* heap and
//! changes who executes the ops. Threads publish operations into
//! per-thread cache-padded publication records; whichever thread holds
//! the heap lock — the **combiner** — batch-applies every pending
//! record before releasing, so under a convoy the shared structure is
//! touched by one cache-warm thread while everyone else does a local
//! spin. Its progress telemetry is dual to the CAS backends': instead
//! of retry histograms it records combining **batch sizes**
//! ([`telemetry::OpHist::Batch`]) and combined-op/pass counters — the
//! practically-wait-free tail question becomes "how many combining
//! rounds can an op wait?", bounded by the apply-all-pending pass
//! discipline (and pinned by a fairness test).
//!
//! Both traits thread a per-operation **token** through every sub-call —
//! an epoch [`Guard`](crossbeam::epoch::Guard) for lock-free backends,
//! zero-sized for locked ones. Retired memory (MS nodes, ring segments,
//! skiplist towers) is handed back through epoch-deferred callbacks that
//! *recycle* into bounded per-structure pools instead of hitting the
//! allocator, which keeps steady-state churn allocation-free without
//! weakening the grace-period argument.
//!
//! ### The worker-session layer
//!
//! Above the composition layer sits **one** abstraction for everything a
//! long-lived worker thread accumulates against a queue. Earlier
//! revisions grew three parallel mechanisms — an amortized epoch pin
//! threaded through `*_in` method variants, a `StickySession` that
//! pinned MultiQueue shard *indices* across pops, and a thread-local
//! picker RNG behind `*_local` convenience calls — all replaced by the
//! per-queue session types built from one vocabulary
//! ([`SessionConfig`], [`SessionPush`], [`PushOutcome`],
//! [`FlushReport`], [`PopSource`]):
//!
//! * [`fifo::FifoSession`] (from [`DRaQueue::session`] /
//!   [`DCboQueue::session`]) carries the worker's [`PinSession`] epoch
//!   pin, its private shard-picker RNG, its **owned home shards**
//!   (`shards_per_worker ≥ 1`, strided over the workers so every shard
//!   has at most one owner), and a **bounded spawn buffer** that parks
//!   pushes and publishes them as one batch to a single
//!   balanced-choice target shard (one choice, one counter bump and one
//!   stamp-range claim per *batch*). Pops are locality-aware: drain the
//!   session's home shards first ([`PopSource::Home`]), then fall back
//!   to the choice-of-`d` steal rounds ([`PopSource::Steal`]).
//! * [`multiqueue::MqSession`] (from [`ConcurrentMultiQueue::session`])
//!   carries the pin, the RNG, the same spawn buffer (deduplicating
//!   repeated items locally — a buffered decrease-key that costs no
//!   shared-memory traffic), and a **sticky peek cache** that pins the
//!   shard *minimum* observed while losing the previous choice-of-two —
//!   not the shard index, so going stale only costs relaxation slack,
//!   never a wrong claim (the claim is still a validated CAS).
//! * [`bucket::BucketSession`] (from [`BucketFifoQueue::session`])
//!   carries the pin, the RNG, owned **home shard columns** (the same
//!   strided shard indices in *every* bucket), and the spawn buffer
//!   with per-bucket merge dedup: flushes sort by bucket index so each
//!   touched bucket pays one counter bump, and repeated items merge in
//!   the buffer before any shared traffic.
//!
//! Buffered spawns interact with termination detection through the
//! flush protocol: [`FlushReport`] tells the caller how many parked
//! elements were published and how many of those merged into existing
//! entries, which is exactly the signal the `rsched-runtime` quiescence
//! counter needs to stay conservative (a parked element counts as in
//! flight until its flush resolves it). The runtime's worker loop
//! flushes on every pop miss, so a buffer can never hide the last tasks
//! of a computation.
//!
//! The regime trade-off is consistent across both families: locked
//! shards have the smaller constants and win while every critical
//! section stays uncontended and un-preempted; the lock-free backends
//! hold their throughput flat as threads exceed cores and win under
//! oversubscription and real multicore contention (`fifo_contention`
//! and `mq_contention` in `rsched-bench` measure exactly this
//! crossover, now with the session `shards_per_worker × spawn_batch`
//! axes swept alongside).
//!
//! ### The telemetry layer
//!
//! "Practically wait-free" is a claim about the *tail* of per-op
//! progress distributions, not about means — so every hot path in the
//! crate feeds [`telemetry`]: a fixed-footprint log₂ histogram
//! ([`PowHistogram`]) per series plus plain event counters, recorded
//! into a thread-local buffer (no atomics, no allocation per op) and
//! folded into process globals on thread exit. What is recorded where:
//! the lock-free backends ([`SegRingQueue`], [`MsQueue`],
//! [`SkipShard`]) record CAS/claim **retries per successful pop**; the
//! pop engines ([`DRaQueue`], [`DCboQueue`], [`ConcurrentMultiQueue`],
//! [`BucketFifoQueue`]) record **steal/choice rounds** per pop,
//! fallback **sweep lengths**, and **empty-pop** sweeps;
//! [`BucketFifoQueue`] additionally records **floor-scan distances**
//! and directory **segment installs**; [`SkipShard`] counts registry
//! probes; every `flush_session` counts published vs merged elements;
//! and the vendored `crossbeam::epoch` exports deferred/collected GC
//! counts. The whole layer sits behind one process-wide gate
//! (`RSCHED_TELEMETRY`, [`telemetry::set_enabled`]): when off, each
//! instrumentation point costs a single relaxed atomic load and a
//! predictable branch — no thread-local access, no stores. Benches
//! bracket a measured window with [`telemetry::reset`] /
//! [`telemetry::capture`] and export the resulting
//! [`TelemetrySnapshot`] (bucket arrays + p50/p90/p99/p999/max) into
//! their JSON schema, where `bench_compare` gates p99 retry tails.
//!
//! ### The trace layer
//!
//! Histograms say *how bad*; the flight recorder in [`trace`] says
//! *when and why*. Every scheduling thread owns a fixed-capacity
//! single-producer ring of packed 16-byte events — nanosecond
//! timestamp, [`EventKind`] byte, 56-bit payload — with wrap-around
//! overwrite, so a crash or stall always leaves the last N events per
//! worker inspectable. The event vocabulary covers the scheduler
//! lifecycle: task inject/pop/complete, steal rounds, flush
//! publish/merge, park/unpark, drain, admission reject. The layer is
//! always compiled and gated by `RSCHED_TRACE` (default **off**; ring
//! capacity via `RSCHED_TRACE_EVENTS`): disabled, every [`trace::emit`]
//! is one relaxed load and a branch — the same discipline as the
//! telemetry gate. [`TraceSink`] snapshots all lanes at `run()`/drain
//! boundaries and exports Chrome trace-event JSON (`RSCHED_TRACE_OUT`)
//! with one `tid` per lane and `B`/`E` spans for pop→complete, so any
//! run opens directly in Perfetto or `chrome://tracing`.

pub mod bucket;
pub mod builder;
pub mod fifo;
pub mod flatcomb;
pub mod heap;
pub mod instrument;
pub mod kbounded;
pub mod klsm;
pub mod lockfree;
pub mod multiqueue;
pub mod pairing;
pub mod skipshard;
pub mod spraylist;
pub mod telemetry;
pub mod trace;

pub use bucket::{BucketFifoQueue, BucketSession};
pub use builder::QueueBuilder;
pub use fifo::{
    DCboFaaQueue, DCboMsQueue, DCboMutexQueue, DCboQueue, DCboSegQueue, DRaFaaQueue, DRaMsQueue,
    DRaMutexQueue, DRaQueue, DRaSegQueue, FifoRankStats, FifoRankTracker, FifoSession, MutexSub,
    PinSession, RelaxedFifo, SubFifo, TryPop,
};
pub use flatcomb::FcHeapSub;
pub use heap::IndexedBinaryHeap;
pub use instrument::{ConcurrentRankEstimator, RankRecorder, RankStats, RankTracker};
pub use kbounded::RotatingKQueue;
pub use klsm::{KLsmHandle, KLsmQueue};
pub use lockfree::{FaaRingQueue, MsQueue, SegRingQueue};
pub use multiqueue::Placement;
pub use multiqueue::{
    ConcurrentMultiQueue, DuplicateMultiQueue, FcHeapMultiQueue, MqSession, MutexHeapMultiQueue,
    SimMultiQueue, SkipListMultiQueue,
};
pub use pairing::PairingHeap;
pub use skipshard::{MutexHeapSub, SkipShard, SubPriority, TryPopMin};
pub use spraylist::{ConcurrentSprayList, SprayList};
pub use telemetry::{HistSnapshot, PowHistogram, TelemetrySnapshot};
pub use trace::{EventKind, LaneSnapshot, TraceEvent, TraceSink};

/// Sentinel meaning "item is not currently stored in the queue".
pub(crate) const NOT_PRESENT: usize = usize::MAX;

// ---------------------------------------------------------------------
// The worker-session vocabulary
// ---------------------------------------------------------------------

/// Ceiling on [`SessionConfig::spawn_batch`]: an unbounded buffer would
/// let one worker hold an arbitrary slice of the computation invisible
/// to every other worker.
pub const MAX_SPAWN_BATCH: usize = 4096;

/// Configuration for a worker session over any concurrent queue in this
/// crate ([`DRaQueue::session`], [`DCboQueue::session`],
/// [`ConcurrentMultiQueue::session`]).
///
/// A session is the worker-owned half of a queue: the epoch pin, the
/// shard-picker RNG stream, the owned home shards, the sticky peek
/// cache and the bounded spawn buffer all live in it, so the shared
/// structure stays free of any per-thread state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// This worker's id in `0..workers`.
    pub tid: usize,
    /// Total cooperating workers (determines the home-shard stride).
    pub workers: usize,
    /// Seed for the session's private RNG stream (derive per worker).
    pub seed: u64,
    /// Home shards this worker owns and drains first (FIFO queues).
    /// `0` disables affinity entirely — every pop is an unbiased
    /// choice-of-`d`, as the pre-session queues behaved.
    pub shards_per_worker: usize,
    /// Spawn-buffer capacity (clamped to [`MAX_SPAWN_BATCH`]); `1`
    /// publishes every push immediately.
    pub spawn_batch: usize,
    /// Adapt the live spawn-buffer size at runtime (FIFO sessions):
    /// start at 1, double toward `spawn_batch` while home-shard pops
    /// hit, and halve toward 1 on every pop miss, so batching tracks
    /// how much locally-produced work the session is actually seeing.
    /// `spawn_batch` stays the hard ceiling. Off by default — the
    /// buffer is then a fixed `spawn_batch` slots, as before.
    pub adaptive_spawn: bool,
    /// How many consecutive pops may reuse the session's sticky peek
    /// cache before a forced re-sample (MultiQueue); `1` re-samples
    /// every pop — the classic two-choice protocol.
    pub stickiness: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            tid: 0,
            workers: 1,
            seed: 0,
            shards_per_worker: 1,
            spawn_batch: 1,
            adaptive_spawn: false,
            stickiness: 1,
        }
    }
}

impl SessionConfig {
    /// A session config for worker `tid` of `workers`, everything else
    /// at the defaults.
    pub fn for_worker(tid: usize, workers: usize) -> Self {
        Self {
            tid,
            workers: workers.max(1),
            seed: (tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..Self::default()
        }
    }

    /// A session with no shard affinity (uniform random pops) — what a
    /// drain loop or a caller outside any worker pool wants.
    pub fn unaffine(seed: u64) -> Self {
        Self {
            seed,
            shards_per_worker: 0,
            ..Self::default()
        }
    }
}

/// What a session-mediated push did — the conservation signal callers
/// maintaining element counts (the runtime's quiescence detector, the
/// contention benchmarks) fold into their accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionPush {
    /// A net-new element became (or will become, once the buffer
    /// flushes without merging it) visible in the shared structure.
    Inserted,
    /// Merged into an existing entry — a decrease-key hit in the shared
    /// structure or a dedup inside the session's own buffer. No net-new
    /// element.
    Merged,
    /// Parked in the session's spawn buffer; whether it merges is
    /// decided by the [`FlushReport`] of the flush that publishes it.
    Buffered,
}

/// Outcome of a flush: how many parked elements were published and how
/// many of those merged into existing entries (and therefore are *not*
/// net-new, whatever the pusher assumed when parking them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Buffered elements pushed to the shared structure.
    pub published: u64,
    /// Of those, how many merged (net element count unchanged).
    pub merged: u64,
}

impl FlushReport {
    /// Fold another report into this one.
    pub fn absorb(&mut self, other: FlushReport) {
        self.published += other.published;
        self.merged += other.merged;
    }
}

/// A session push plus any flush it triggered (a full buffer publishes
/// itself before accepting the new element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushOutcome {
    /// The pushed element's own fate.
    pub push: SessionPush,
    /// Side-effect flush, empty when none happened.
    pub flushed: FlushReport,
}

impl PushOutcome {
    pub(crate) fn immediate(push: SessionPush) -> Self {
        Self {
            push,
            flushed: FlushReport::default(),
        }
    }

    /// The net element-count delta this outcome implies — **the**
    /// conservation rule for session pushes, in one place: `Inserted`
    /// and `Buffered` elements are presumed net-new, `Merged` ones are
    /// not, and every merge the side-effect flush reported retracts one
    /// earlier presumption. Summing this over all pushes, plus
    /// `-merged` of every explicit [`FlushReport`], equals the number
    /// of elements pops will deliver once the structure drains.
    pub fn net_new(&self) -> i64 {
        let presumed = matches!(self.push, SessionPush::Inserted | SessionPush::Buffered) as i64;
        presumed - self.flushed.merged as i64
    }
}

/// Where a session pop found its element — the locality statistic the
/// runtime folds into per-worker home-hit/steal counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopSource {
    /// One of the session's own home shards (FIFO queues), or a sticky
    /// peek-cache hit (MultiQueue).
    Home,
    /// A foreign shard of a session that owns home shards.
    Steal,
    /// A session without affinity (or a queue without a home notion).
    Shared,
}

/// An exact priority queue over dense `usize` items.
///
/// The minimum element is the one with the smallest `(priority, item)` pair;
/// ties on priority are broken by item id, so the order is total and
/// deterministic.
pub trait PriorityQueue<P: Ord + Copy> {
    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` if no items are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert `item` with priority `prio`.
    ///
    /// Panics if `item` is already present (each item id may be stored at
    /// most once; use [`DecreaseKey::decrease_key`] to update priorities).
    fn push(&mut self, item: usize, prio: P);

    /// Remove and return the minimum `(item, priority)` pair.
    fn pop(&mut self) -> Option<(usize, P)>;

    /// Return the minimum `(item, priority)` pair without removing it.
    fn peek(&self) -> Option<(usize, P)>;
}

/// Exact priority queues that additionally support addressable updates.
pub trait DecreaseKey<P: Ord + Copy>: PriorityQueue<P> {
    /// `true` if `item` is currently stored.
    fn contains(&self, item: usize) -> bool;

    /// Current priority of `item`, if stored.
    fn priority_of(&self, item: usize) -> Option<P>;

    /// Lower the priority of `item` to `prio`.
    ///
    /// Returns `true` if the item was present *and* `prio` was strictly
    /// smaller than its current priority; otherwise the queue is unchanged
    /// and `false` is returned.
    fn decrease_key(&mut self, item: usize, prio: P) -> bool;

    /// Remove `item` from an arbitrary position, returning its priority.
    fn remove(&mut self, item: usize) -> Option<P>;
}

/// The paper's relaxed scheduler interface `Q_k` (Section 2), in sequential
/// form.
///
/// A `k`-relaxed queue promises two properties:
///
/// * **RankBound** — every element returned by [`peek_relaxed`] is among the
///   `k` smallest currently stored;
/// * **Fairness** — once an element becomes the global minimum it is returned
///   after at most `k` calls to [`peek_relaxed`].
///
/// Deterministic implementations ([`RotatingKQueue`], and trivially the exact
/// queues with `k = 1`) enforce both properties unconditionally; randomized
/// ones ([`SimMultiQueue`], [`SprayList`]) enforce them with high probability,
/// as shown in "The power of choice in priority scheduling" (PODC 2017).
///
/// [`peek_relaxed`]: RelaxedQueue::peek_relaxed
pub trait RelaxedQueue<P: Ord + Copy> {
    /// Insert `item` with priority `prio`. `item` must not be present.
    fn insert(&mut self, item: usize, prio: P);

    /// The paper's `ApproxGetMin()`: return a `(item, priority)` pair subject
    /// to the relaxation guarantees, *without* removing it.
    ///
    /// Successive calls may return different elements (the scheduler is free
    /// to re-randomize); the incremental-algorithm executor calls
    /// [`delete`](RelaxedQueue::delete) only when the returned task's
    /// dependencies are satisfied, mirroring Algorithm 2 of the paper.
    fn peek_relaxed(&mut self) -> Option<(usize, P)>;

    /// The paper's `DeleteTask()`: remove `item`, returning `true` if it was
    /// present.
    fn delete(&mut self, item: usize) -> bool;

    /// Combined `ApproxGetMin` + `DeleteTask`, used by algorithms that always
    /// consume the returned task (e.g. SSSP, Algorithm 3 of the paper).
    fn pop_relaxed(&mut self) -> Option<(usize, P)> {
        let (item, prio) = self.peek_relaxed()?;
        let deleted = self.delete(item);
        debug_assert!(deleted, "peeked item must be deletable");
        Some((item, prio))
    }

    /// Atomically lower the priority of `item` to `prio` (Section 6 of the
    /// paper assumes the scheduler supports this for SSSP).
    ///
    /// Returns `true` on success, `false` if the item is absent or `prio` is
    /// not strictly smaller than the current priority.
    fn decrease_key(&mut self, item: usize, prio: P) -> bool;

    /// `true` if `item` is currently stored.
    fn contains(&self, item: usize) -> bool;

    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` if no items are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The nominal relaxation factor `k` of this queue: `1` for exact queues,
    /// the configured bound for deterministic relaxed queues, and the
    /// high-probability bound `O(q log q)` for randomized ones.
    fn relaxation_factor(&self) -> usize;
}

/// Adapter presenting an exact [`DecreaseKey`] queue as a `1`-relaxed queue.
///
/// This lets the executors run the *exact* baseline (Algorithm 1 of the
/// paper) through the same code path as the relaxed runs:
///
/// ```
/// use rsched_queues::{Exact, IndexedBinaryHeap, RelaxedQueue};
///
/// let mut q = Exact(IndexedBinaryHeap::<u64>::new());
/// q.insert(0, 10);
/// q.insert(1, 5);
/// assert_eq!(q.pop_relaxed(), Some((1, 5)));
/// assert_eq!(q.relaxation_factor(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Exact<Q>(pub Q);

impl<P: Ord + Copy, Q: DecreaseKey<P>> RelaxedQueue<P> for Exact<Q> {
    fn insert(&mut self, item: usize, prio: P) {
        self.0.push(item, prio);
    }

    fn peek_relaxed(&mut self) -> Option<(usize, P)> {
        self.0.peek()
    }

    fn delete(&mut self, item: usize) -> bool {
        self.0.remove(item).is_some()
    }

    fn pop_relaxed(&mut self) -> Option<(usize, P)> {
        self.0.pop()
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        self.0.decrease_key(item, prio)
    }

    fn contains(&self, item: usize) -> bool {
        self.0.contains(item)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn relaxation_factor(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn exact_heap_is_a_one_relaxed_queue() {
        let mut h = Exact(IndexedBinaryHeap::<u64>::new());
        h.insert(3, 30);
        h.insert(1, 10);
        h.insert(2, 20);
        assert_eq!(h.relaxation_factor(), 1);
        assert_eq!(h.peek_relaxed(), Some((1, 10)));
        assert_eq!(h.pop_relaxed(), Some((1, 10)));
        assert!(h.decrease_key(3, 5));
        assert_eq!(h.pop_relaxed(), Some((3, 5)));
        assert_eq!(h.pop_relaxed(), Some((2, 20)));
        assert!(h.is_empty());
    }
}
