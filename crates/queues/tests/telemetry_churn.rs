//! Drop-flush under thread churn: telemetry recorded by short-lived
//! threads must land in the global state exactly once, even while other
//! threads are concurrently capturing snapshots.
//!
//! Worker telemetry lives in a thread-local [`OpRecorder`] that folds
//! into the process-global state from its TLS destructor. This test
//! hammers exactly that edge: rounds of threads that each record a
//! handful of events and immediately exit, racing a poller that calls
//! [`capture`] the whole time. Lost flushes would undercount; a
//! double-flush (destructor + explicit) would overcount; both are exact
//! equality failures at the end.
//!
//! Lives in its own integration-test binary on purpose: telemetry state
//! is process-global, and sharing a process with other telemetry tests
//! would make exact-count assertions racy.

use rsched_queues::telemetry::{self, OpCount, OpHist};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

#[test]
fn drop_flush_survives_thread_churn_under_concurrent_capture() {
    telemetry::set_enabled(true);
    telemetry::reset();

    const ROUNDS: usize = 20;
    const THREADS: usize = 8;
    const EVENTS: u64 = 50;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The antagonist: captures (which flush *this* thread's local
        // state and read the globals) as fast as it can, all run long.
        // Snapshots taken mid-churn must be monotone in event count —
        // a dip would mean a flush was observed twice or torn.
        let poller = scope.spawn(|| {
            let mut last = 0u64;
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = telemetry::capture();
                let seen = snap.retry.count;
                assert!(
                    seen >= last,
                    "global event count went backwards: {seen} < {last}"
                );
                last = seen;
                polls += 1;
            }
            polls
        });

        for round in 0..ROUNDS {
            let barrier = Barrier::new(THREADS);
            std::thread::scope(|inner| {
                for t in 0..THREADS {
                    let barrier = &barrier;
                    inner.spawn(move || {
                        // Line the spawn/record/exit windows up so the
                        // TLS destructors of a whole round race each
                        // other and the poller.
                        barrier.wait();
                        for i in 0..EVENTS {
                            telemetry::record(OpHist::Retry, (round * THREADS + t) as u64 + i);
                            telemetry::count(OpCount::EmptyPop, 1);
                        }
                        // No explicit flush: the TLS destructor is the
                        // path under test.
                    });
                }
            });
        }

        stop.store(true, Ordering::Relaxed);
        let polls = poller.join().expect("poller panicked");
        assert!(polls > 0, "poller never ran");
    });

    // Every churned thread has exited and its destructor has run
    // (scoped threads join before the scope returns): totals are exact.
    let expected = (ROUNDS * THREADS) as u64 * EVENTS;
    let snap = telemetry::capture();
    assert_eq!(
        snap.retry.count, expected,
        "retry events lost or double-counted across {ROUNDS} rounds of churn"
    );
    assert_eq!(
        snap.retry.buckets.iter().sum::<u64>(),
        expected,
        "bucket totals disagree with count"
    );
    assert_eq!(
        snap.empty_pops, expected,
        "counter events lost or double-counted"
    );
}
