//! Best-first branch-and-bound under relaxed scheduling.
//!
//! The idea of relaxed priority scheduling traces back to Karp and Zhang's
//! parallel backtracking (JACM 1993), which the paper's introduction cites
//! as the origin of the approach: expand search-tree nodes speculatively,
//! out of best-first order, without losing correctness. This module
//! implements 0/1-knapsack branch-and-bound as a *dynamic-task* incremental
//! algorithm — tasks (search nodes) are created during execution, the case
//! the paper's Section 3 framework extends the PODC 2018 model with — and
//! measures the classic trade-off: a `k`-relaxed scheduler may expand nodes
//! an exact best-first search would have pruned.
//!
//! Priorities are inverted upper bounds (best-first = smallest key), so the
//! exact scheduler reproduces textbook best-first B&B; any relaxed queue
//! can be plugged in, and the *extra expansions* relative to the exact run
//! quantify the wasted speculation.

use rsched_graph::Weight;
use rsched_queues::RelaxedQueue;

/// A 0/1-knapsack instance.
#[derive(Clone, Debug)]
pub struct Knapsack {
    /// `(value, weight)` pairs, sorted by value density (descending).
    items: Vec<(u64, u64)>,
    capacity: u64,
}

/// Statistics of a branch-and-bound run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BnbStats {
    /// Optimal value found.
    pub best_value: u64,
    /// Nodes expanded (popped and branched).
    pub expanded: u64,
    /// Nodes popped but pruned (their bound no longer beats the incumbent)
    /// — wasted work, the analogue of the paper's extra steps.
    pub pruned_after_pop: u64,
    /// Nodes generated in total.
    pub generated: u64,
}

/// A search node: a partial assignment of the first `level` items.
#[derive(Clone, Copy, Debug)]
struct Node {
    level: u32,
    weight: u64,
    value: u64,
}

impl Knapsack {
    /// Build an instance (items are re-sorted by density internally).
    pub fn new(mut items: Vec<(u64, u64)>, capacity: u64) -> Self {
        assert!(!items.is_empty());
        assert!(items.iter().all(|&(v, w)| v > 0 && w > 0));
        items.sort_by(|&(v1, w1), &(v2, w2)| {
            (v2 as u128 * w1 as u128).cmp(&(v1 as u128 * w2 as u128))
        });
        Knapsack { items, capacity }
    }

    /// A seeded random instance with `n` items; weights correlate loosely
    /// with values so the search tree is non-trivial.
    pub fn random(n: usize, seed: u64) -> Self {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let items: Vec<(u64, u64)> = (0..n)
            .map(|_| {
                let w = rng.gen_range(5..100u64);
                let v = w + rng.gen_range(0..50u64);
                (v, w)
            })
            .collect();
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        Knapsack::new(items, total / 3)
    }

    /// Fractional-relaxation upper bound for `node`.
    fn upper_bound(&self, node: &Node) -> u64 {
        let mut bound = node.value;
        let mut room = self.capacity - node.weight;
        for &(v, w) in &self.items[node.level as usize..] {
            if w <= room {
                room -= w;
                bound += v;
            } else {
                // Fractional part, rounded up (still a valid upper bound).
                bound += (v as u128 * room as u128).div_ceil(w as u128) as u64;
                break;
            }
        }
        bound
    }

    /// Exact optimum by dynamic programming — the independent verifier.
    pub fn dp_optimum(&self) -> u64 {
        let cap = self.capacity as usize;
        let mut best = vec![0u64; cap + 1];
        for &(v, w) in &self.items {
            let w = w as usize;
            for c in (w..=cap).rev() {
                best[c] = best[c].max(best[c - w] + v);
            }
        }
        best[cap]
    }

    /// Best-first branch-and-bound through a (relaxed) scheduler.
    ///
    /// Keys are `u64::MAX − upper_bound`, so smaller key = more promising,
    /// matching the min-queue convention of [`RelaxedQueue`]. Node ids are
    /// allocated sequentially as nodes are generated (dynamic tasks).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsched_algos::branch_bound::Knapsack;
    /// use rsched_queues::{Exact, IndexedBinaryHeap, SimMultiQueue};
    ///
    /// let inst = Knapsack::random(24, 7);
    /// let exact = inst.solve(&mut Exact(IndexedBinaryHeap::new()));
    /// let relaxed = inst.solve(&mut SimMultiQueue::new(8, 3));
    /// assert_eq!(exact.best_value, relaxed.best_value);
    /// assert_eq!(exact.best_value, inst.dp_optimum());
    /// // Relaxation can only add expansions, never lose the optimum.
    /// assert!(relaxed.expanded >= exact.expanded);
    /// ```
    pub fn solve<Q: RelaxedQueue<Weight>>(&self, queue: &mut Q) -> BnbStats {
        let mut stats = BnbStats::default();
        let mut nodes: Vec<Node> = Vec::new();
        let root = Node {
            level: 0,
            weight: 0,
            value: 0,
        };
        let mut best = 0u64;
        let root_key = u64::MAX - self.upper_bound(&root);
        nodes.push(root);
        stats.generated += 1;
        queue.insert(0, root_key);
        while let Some((id, key)) = queue.pop_relaxed() {
            let node = nodes[id];
            let bound = u64::MAX - key;
            if bound <= best {
                stats.pruned_after_pop += 1;
                continue;
            }
            stats.expanded += 1;
            let level = node.level as usize;
            if level == self.items.len() {
                best = best.max(node.value);
                continue;
            }
            let (v, w) = self.items[level];
            // Branch 1: take the item (if it fits).
            if node.weight + w <= self.capacity {
                let child = Node {
                    level: node.level + 1,
                    weight: node.weight + w,
                    value: node.value + v,
                };
                best = best.max(child.value);
                let b = self.upper_bound(&child);
                if b > best || child.level as usize == self.items.len() {
                    let id = nodes.len();
                    nodes.push(child);
                    stats.generated += 1;
                    queue.insert(id, u64::MAX - b);
                }
            }
            // Branch 2: skip the item.
            let child = Node {
                level: node.level + 1,
                weight: node.weight,
                value: node.value,
            };
            let b = self.upper_bound(&child);
            if b > best {
                let id = nodes.len();
                nodes.push(child);
                stats.generated += 1;
                queue.insert(id, u64::MAX - b);
            }
        }
        stats.best_value = best;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{AdversarialScheduler, AdversaryStrategy};
    use rsched_queues::{Exact, IndexedBinaryHeap, RotatingKQueue, SimMultiQueue, SprayList};

    #[test]
    fn exact_bnb_matches_dp_on_many_instances() {
        for seed in 0..10u64 {
            let inst = Knapsack::random(20, seed);
            let stats = inst.solve(&mut Exact(IndexedBinaryHeap::new()));
            assert_eq!(stats.best_value, inst.dp_optimum(), "seed {seed}");
        }
    }

    #[test]
    fn every_scheduler_finds_the_optimum() {
        let inst = Knapsack::random(26, 42);
        let want = inst.dp_optimum();
        assert_eq!(inst.solve(&mut SimMultiQueue::new(8, 1)).best_value, want);
        assert_eq!(inst.solve(&mut RotatingKQueue::new(12)).best_value, want);
        assert_eq!(inst.solve(&mut SprayList::new(8, 2)).best_value, want);
        assert_eq!(
            inst.solve(&mut AdversarialScheduler::new(
                16,
                AdversaryStrategy::MaxRank
            ))
            .best_value,
            want
        );
    }

    #[test]
    fn relaxation_costs_extra_expansions() {
        // Average over seeds: relaxed best-first expands at least as many
        // nodes as exact best-first.
        let mut exact_total = 0u64;
        let mut relaxed_total = 0u64;
        for seed in 0..10u64 {
            let inst = Knapsack::random(22, seed);
            exact_total += inst.solve(&mut Exact(IndexedBinaryHeap::new())).expanded;
            relaxed_total += inst
                .solve(&mut AdversarialScheduler::new(
                    32,
                    AdversaryStrategy::MaxRank,
                ))
                .expanded;
        }
        assert!(
            relaxed_total >= exact_total,
            "relaxed {relaxed_total} < exact {exact_total}"
        );
    }

    #[test]
    fn accounting_is_consistent() {
        let inst = Knapsack::random(18, 3);
        let stats = inst.solve(&mut SimMultiQueue::new(4, 9));
        assert_eq!(
            stats.expanded + stats.pruned_after_pop,
            stats.generated,
            "every generated node is popped exactly once"
        );
    }

    #[test]
    fn tiny_instances() {
        // Single item that fits.
        let inst = Knapsack::new(vec![(10, 5)], 5);
        let s = inst.solve(&mut Exact(IndexedBinaryHeap::new()));
        assert_eq!(s.best_value, 10);
        // Single item that does not fit.
        let inst = Knapsack::new(vec![(10, 5)], 4);
        let s = inst.solve(&mut Exact(IndexedBinaryHeap::new()));
        assert_eq!(s.best_value, 0);
    }
}
