//! Comparison sorting by BST insertion (Section 3 of the paper).
//!
//! The sequential algorithm inserts `n` keys into an (unbalanced) binary
//! search tree in label order; the random labelling makes the tree a treap
//! with priority = label, so its expected depth is `O(log n)`. The in-order
//! traversal of the final tree is the sorted output.
//!
//! **Dependencies.** Task `v` depends on its *ancestors* in the resulting
//! BST: it cannot be inserted before its final parent is present (otherwise
//! plain insertion would put it somewhere else). Because a task's parent's
//! ancestors are exactly the task's remaining ancestors, the dependency
//! check reduces to "is my final parent processed?". The final tree is
//! unique (it is the treap of `(key, label)` pairs), so we precompute every
//! task's parent by simulating the sequential insertion once — the same
//! structure [10, Section 3] analyses, with `p_{ij} ≤ O(1/i)` and `p_{i,i+1}
//! ≥ 1/i`, the properties Theorems 3.3 and 5.1 need.
//!
//! Processing a task under the relaxed executor really inserts the key into
//! an incrementally grown BST; the implementation asserts that each
//! insertion lands exactly at its precomputed treap position, which verifies
//! the invariant "processing in any dependency-respecting order rebuilds the
//! sequential tree".

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsched_core::IncrementalAlgorithm;

const NONE: usize = usize::MAX;

/// Comparison sorting by BST insertion as an incremental algorithm.
///
/// Labels are `0..n`; task `i` inserts `keys[i]`. Construct with
/// [`BstSort::random`] for the paper's random-permutation setting or
/// [`BstSort::from_keys`] for an explicit key order.
///
/// # Examples
///
/// ```
/// use rsched_algos::BstSort;
/// use rsched_core::{run_relaxed, IncrementalAlgorithm};
/// use rsched_queues::SimMultiQueue;
///
/// let mut alg = BstSort::random(500, 42);
/// let stats = run_relaxed(&mut alg, &mut SimMultiQueue::new(8, 1));
/// assert_eq!(stats.processed, 500);
/// let sorted = alg.in_order_keys();
/// assert!(sorted.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Clone, Debug)]
pub struct BstSort {
    keys: Vec<u64>,
    /// `parent[v]` = label of v's parent in the sequential BST (treap).
    parent: Vec<usize>,
    /// `depth[v]` = v's depth in the sequential BST (root = 0).
    depth: Vec<usize>,
    processed: Vec<bool>,
    n_processed: usize,
    // The incrementally grown tree (child pointers by label).
    left: Vec<usize>,
    right: Vec<usize>,
    root: usize,
}

impl BstSort {
    /// `n` tasks whose keys are a seeded uniformly random permutation of
    /// `0..n` — the randomized incremental algorithm of the paper.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut keys: Vec<u64> = (0..n as u64).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(seed));
        Self::from_keys(keys)
    }

    /// Tasks with explicit (distinct) keys; task `i` inserts `keys[i]`.
    pub fn from_keys(keys: Vec<u64>) -> Self {
        let n = keys.len();
        {
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "keys must be distinct");
        }
        // Simulate the sequential insertion to learn the tree shape.
        let mut parent = vec![NONE; n];
        let mut depth = vec![0usize; n];
        let mut left = vec![NONE; n];
        let mut right = vec![NONE; n];
        let mut root = NONE;
        for v in 0..n {
            if root == NONE {
                root = v;
                continue;
            }
            let mut cur = root;
            loop {
                let next = if keys[v] < keys[cur] {
                    &mut left[cur]
                } else {
                    &mut right[cur]
                };
                if *next == NONE {
                    *next = v;
                    parent[v] = cur;
                    depth[v] = depth[cur] + 1;
                    break;
                }
                cur = *next;
            }
        }
        BstSort {
            keys,
            parent,
            depth,
            processed: vec![false; n],
            n_processed: 0,
            left: vec![NONE; n],
            right: vec![NONE; n],
            root: NONE,
        }
    }

    /// The key inserted by task `v`.
    pub fn key(&self, v: usize) -> u64 {
        self.keys[v]
    }

    /// Label of `v`'s parent in the sequential tree, or `None` for the root.
    pub fn parent_of(&self, v: usize) -> Option<usize> {
        if self.parent[v] == NONE {
            None
        } else {
            Some(self.parent[v])
        }
    }

    /// Depth of `v` in the sequential tree (root = 0). The maximum over all
    /// tasks is the dependency depth of the instance.
    pub fn depth_of(&self, v: usize) -> usize {
        self.depth[v]
    }

    /// `true` iff task `j` depends on task `i` (`i` is a strict ancestor of
    /// `j` in the sequential tree). The dependency oracle for the
    /// transactional model (Section 4).
    pub fn depends(&self, i: usize, j: usize) -> bool {
        if i >= j {
            return false;
        }
        let mut cur = self.parent[j];
        while cur != NONE {
            if cur == i {
                return true;
            }
            cur = self.parent[cur];
        }
        false
    }

    /// In-order traversal of the (fully or partially) built tree.
    pub fn in_order_keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n_processed);
        // Iterative in-order to avoid recursion-depth issues on adversarial
        // shapes.
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NONE || !stack.is_empty() {
            while cur != NONE {
                stack.push(cur);
                cur = self.left[cur];
            }
            let v = stack.pop().expect("stack non-empty");
            out.push(self.keys[v]);
            cur = self.right[v];
        }
        out
    }

    /// Number of processed tasks.
    pub fn num_processed(&self) -> usize {
        self.n_processed
    }
}

impl IncrementalAlgorithm for BstSort {
    fn num_tasks(&self) -> usize {
        self.keys.len()
    }

    fn deps_satisfied(&self, task: usize) -> bool {
        let p = self.parent[task];
        p == NONE || self.processed[p]
    }

    fn process(&mut self, task: usize) {
        debug_assert!(!self.processed[task]);
        debug_assert!(self.deps_satisfied(task));
        // Really insert into the growing tree and verify it lands at the
        // precomputed position.
        if self.root == NONE && self.parent[task] == NONE {
            self.root = task;
        } else {
            let p = self.parent[task];
            let slot = if self.keys[task] < self.keys[p] {
                &mut self.left[p]
            } else {
                &mut self.right[p]
            };
            debug_assert_eq!(*slot, NONE, "treap slot already occupied");
            *slot = task;
        }
        self.processed[task] = true;
        self.n_processed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{run_exact, run_relaxed, run_relaxed_with};
    use rsched_queues::{RotatingKQueue, SimMultiQueue, SprayList};

    #[test]
    fn exact_run_sorts() {
        let mut alg = BstSort::random(1000, 7);
        let stats = run_exact(&mut alg);
        assert_eq!(stats.steps, 1000);
        let sorted = alg.in_order_keys();
        assert_eq!(sorted, (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn relaxed_runs_sort_under_every_scheduler() {
        let n = 600;
        let check = |alg: &BstSort| {
            assert_eq!(alg.in_order_keys(), (0..n as u64).collect::<Vec<_>>());
        };
        let mut a = BstSort::random(n, 3);
        run_relaxed(&mut a, &mut SimMultiQueue::new(8, 5));
        check(&a);
        let mut b = BstSort::random(n, 3);
        run_relaxed(&mut b, &mut RotatingKQueue::new(7));
        check(&b);
        let mut c = BstSort::random(n, 3);
        run_relaxed(&mut c, &mut SprayList::new(8, 5));
        check(&c);
        let mut d = BstSort::random(n, 3);
        run_relaxed_with(&mut d, 6, |alg, w| {
            // Dependency-aware adversary.
            w.iter().position(|&t| !alg.deps_satisfied(t)).unwrap_or(0)
        });
        check(&d);
    }

    #[test]
    fn dependency_is_ancestor_relation() {
        let alg = BstSort::from_keys(vec![50, 30, 70, 20, 60]);
        // Tree: 50 root; 30 left; 70 right; 20 left-left; 60 (under 70).
        assert!(alg.depends(0, 1), "root is ancestor of everything");
        assert!(alg.depends(1, 3), "30 is parent of 20");
        assert!(alg.depends(2, 4), "70 is parent of 60");
        assert!(!alg.depends(1, 2), "siblings are independent");
        assert!(!alg.depends(3, 4));
        assert!(!alg.depends(4, 3), "dependencies point backwards only");
        assert_eq!(alg.parent_of(0), None);
        assert_eq!(alg.parent_of(4), Some(2));
        assert_eq!(alg.depth_of(3), 2);
    }

    #[test]
    fn expected_depth_is_logarithmic() {
        // Random treap depth is ~4.3 ln n in expectation; allow slack.
        let n = 4096;
        let alg = BstSort::random(n, 11);
        let max_depth = (0..n).map(|v| alg.depth_of(v)).max().unwrap();
        let ln = (n as f64).ln();
        assert!(
            (max_depth as f64) < 8.0 * ln,
            "depth {max_depth} too large for a random treap"
        );
    }

    #[test]
    fn consecutive_label_dependency_probability() {
        // Theorem 5.1 uses p_{i,i+1} ≥ 1/i: tasks i and i+1 are in a
        // parent-child relation iff their keys are adjacent among the first
        // i+2 keys. Measure the empirical frequency over many seeds for a
        // small i and check it is at least ~1/(i+1).
        let n = 24;
        let i = 10usize; // label i (0-based): check dependence of i+1 on i
        let mut dependent = 0;
        let trials = 2000;
        for seed in 0..trials {
            let alg = BstSort::random(n, seed);
            if alg.depends(i, i + 1) {
                dependent += 1;
            }
        }
        let freq = dependent as f64 / trials as f64;
        let lower = 1.0 / (i + 1) as f64;
        assert!(
            freq > 0.6 * lower,
            "p_{{i,i+1}} = {freq} too small vs 1/i = {lower}"
        );
    }

    #[test]
    fn adversarial_extra_steps_stay_within_theorem_33_shape() {
        // Extra steps under the worst state-aware adversary must stay far
        // below the trivial k·n bound and grow slowly with n.
        let k = 4;
        let extra = |n: usize| {
            let mut alg = BstSort::random(n, 1);
            let stats = run_relaxed_with(&mut alg, k, |alg, w| {
                w.iter().position(|&t| !alg.deps_satisfied(t)).unwrap_or(0)
            });
            stats.extra_steps
        };
        let e1 = extra(1000);
        assert!(
            (e1 as f64) < 0.5 * (k * 1000) as f64,
            "adversarial extra steps {e1} close to trivial bound"
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_keys_rejected() {
        BstSort::from_keys(vec![1, 2, 1]);
    }
}
