//! # rsched-algos — incremental algorithms under relaxed scheduling
//!
//! The algorithms the SPAA 2019 paper analyses, implemented against the
//! `rsched-core` execution model and the `rsched-queues` schedulers:
//!
//! * [`bst_sort`] — **comparison sorting by BST insertion** (Section 3): the
//!   sequential algorithm inserts keys into a binary search tree in random
//!   label order; a task depends on its ancestors in the resulting treap.
//!   Theorem 3.3 bounds relaxed extra steps by `O(poly(k) log n)`, and
//!   Theorem 5.1 gives the matching `Ω(log n)` MultiQueue lower bound.
//! * [`delaunay`] — **Delaunay mesh triangulation** (Section 3): tasks are
//!   point insertions, dependencies are overlapping encroaching regions,
//!   realized via the conflict-list oracle in `rsched-geometry`.
//! * [`sssp`] — **single-source shortest paths** (Section 6, Algorithm 3):
//!   a sequential-model variant against any relaxed queue (Theorem 6.1's
//!   pop bound) and a truly concurrent variant over the lock-based
//!   MultiQueue (the Section 7 experiments), plus the DecreaseKey ablation.
//! * [`bfs`] — concurrent **unweighted BFS** over a relaxed FIFO (d-CBO)
//!   frontier, driven by the `rsched-runtime` worker pool: the layering is
//!   exactly the sequential BFS's, and the relaxation only shows up as
//!   wasted re-expansions and frontier rank errors.
//! * [`kcore`] — greedy **k-core peeling** over the relaxed FIFO work
//!   queue: deletion order is confluent, so the relaxed result equals the
//!   sequential k-core exactly.
//! * [`label_prop`] — **connected components by min-label propagation**
//!   over the relaxed FIFO frontier: another confluent fixed point, and
//!   the workload that exercises the worker sessions' spawn-batching
//!   path hardest (bursty spawns, batch-published frontiers).
//! * [`branch_bound`] — best-first **branch-and-bound** (0/1 knapsack)
//!   under relaxed scheduling: the Karp–Zhang parallel-backtracking setting
//!   the paper's introduction traces the whole approach to, with *dynamic*
//!   task creation.
//! * [`mis`] / [`coloring`] — greedy **maximal independent set** and
//!   **graph coloring**, the fixed-task iterative algorithms of the
//!   companion paper (Alistarh et al., PODC 2018) that this paper extends;
//!   included as the natural regression baselines and for the "high fanout"
//!   worst-case example the introduction discusses.

pub mod bfs;
pub mod branch_bound;
pub mod bst_sort;
pub mod coloring;
pub mod concurrent;
pub mod delaunay;
pub mod delta_par;
pub mod kcore;
pub mod label_prop;
pub mod mis;
pub mod sssp;

pub use bfs::{parallel_bfs, ParBfsStats};
pub use branch_bound::{BnbStats, Knapsack};
pub use bst_sort::BstSort;
pub use coloring::GreedyColoring;
pub use concurrent::{ConcurrentBstSort, ConcurrentColoring, ConcurrentMis};
pub use delaunay::DelaunayIncremental;
pub use delta_par::{parallel_delta_stepping, relaxed_delta_stepping, ParDeltaStats};
pub use kcore::{kcore_sequential, parallel_kcore, KcoreStats};
pub use label_prop::{
    label_components, parallel_label_propagation, LabelPropConfig, LabelPropStats,
};
pub use mis::GreedyMis;
pub use sssp::{
    parallel_sssp, parallel_sssp_duplicates, parallel_sssp_spraylist, relaxed_sssp_seq,
    ParSsspConfig, ParSsspStats, SeqSsspStats,
};
