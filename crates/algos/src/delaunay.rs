//! Delaunay mesh triangulation as an incremental algorithm (Section 3).
//!
//! Tasks are point insertions; task labels follow a random permutation of
//! the input points (the classic randomized incremental construction).
//! Task `v` depends on task `u < v` when their *encroaching regions*
//! (cavities) overlap — realized here through the Clarkson–Shor conflict
//! lists of `rsched-geometry`: `v` must wait while any pending point with a
//! smaller label is located inside `v`'s cavity. Blelloch et al. (SPAA
//! 2016) prove this dependency structure has the `p_{ij} ≤ O(1/i)`
//! properties that Theorem 3.3 needs, and `p_{i,i+1} ≥ 1/i` for the
//! Theorem 5.1 lower bound.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsched_core::IncrementalAlgorithm;
use rsched_geometry::{random_points, DelaunayState, Point};

/// Delaunay triangulation as a schedulable incremental algorithm.
///
/// Point id equals task label: the permutation is applied to the point
/// array at construction.
///
/// # Examples
///
/// ```
/// use rsched_algos::DelaunayIncremental;
/// use rsched_core::run_relaxed;
/// use rsched_queues::SimMultiQueue;
///
/// let mut alg = DelaunayIncremental::random(200, 1 << 14, 42);
/// let stats = run_relaxed(&mut alg, &mut SimMultiQueue::new(8, 1));
/// assert_eq!(stats.processed, 200);
/// assert_eq!(alg.state().mesh().num_alive(), 2 * 200 + 1);
/// ```
pub struct DelaunayIncremental {
    state: DelaunayState,
}

impl DelaunayIncremental {
    /// `n` random points on `[0, extent)²`, randomly relabelled with the
    /// same seed (the random insertion order of the randomized incremental
    /// algorithm).
    pub fn random(n: usize, extent: i64, seed: u64) -> Self {
        let mut pts = random_points(n, extent, seed);
        // `random_points` output is i.i.d. uniform, but shuffle anyway so an
        // explicit point set passed through `from_points` gets the same
        // treatment.
        pts.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x0D1A_C0DE));
        Self::from_points(pts)
    }

    /// Use `points` as-is: index = label = insertion priority.
    pub fn from_points(points: Vec<Point>) -> Self {
        DelaunayIncremental {
            state: DelaunayState::new(points),
        }
    }

    /// The underlying triangulation state.
    pub fn state(&self) -> &DelaunayState {
        &self.state
    }

    /// Extract the sequential dependency structure: `result[v]` holds the
    /// (sorted) labels every insertion `v` depends on — the vertices of
    /// `v`'s cavity at the moment `v` is inserted in exact label order.
    ///
    /// These are the `D_ij` dependencies for running Delaunay insertion in
    /// the **transactional model** (Section 4): a transaction inserting `v`
    /// conflicts with the transactions that created the triangles its
    /// cavity destroys. Their count per task is `O(1)` in expectation under
    /// random order, the property behind `p_ij ≤ C/i`.
    pub fn dependency_lists(points: &[Point]) -> Vec<Vec<u32>> {
        let mut st = DelaunayState::new(points.to_vec());
        let n = points.len();
        let mut deps = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let mut owners: Vec<u32> = st
                .cavity(v)
                .into_iter()
                .flat_map(|t| st.mesh().tri(t).v)
                .filter(|&p| !st.mesh().is_super(p) && p != v)
                .collect();
            owners.sort_unstable();
            owners.dedup();
            debug_assert!(owners.iter().all(|&u| u < v), "deps must point backwards");
            deps.push(owners);
            st.insert(v);
        }
        deps
    }

    /// The labels of pending higher-priority points blocking `task`
    /// (empty iff the task is runnable).
    pub fn blockers(&self, task: usize) -> Vec<usize> {
        self.state
            .pending_in_cavity(task as u32)
            .into_iter()
            .map(|q| q as usize)
            .filter(|&q| q < task)
            .collect()
    }
}

impl IncrementalAlgorithm for DelaunayIncremental {
    fn num_tasks(&self) -> usize {
        self.state.num_points()
    }

    fn deps_satisfied(&self, task: usize) -> bool {
        // Runnable iff no pending smaller-label point encroaches the cavity.
        self.state
            .pending_in_cavity(task as u32)
            .iter()
            .all(|&q| (q as usize) > task)
    }

    fn process(&mut self, task: usize) {
        self.state.insert(task as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{run_exact, run_relaxed, run_relaxed_with, ExecStats};
    use rsched_queues::{RotatingKQueue, SimMultiQueue};

    fn assert_valid(alg: &DelaunayIncremental) {
        let st = alg.state();
        st.check_invariants();
        st.mesh().check_delaunay(st.inserted_flags());
        assert_eq!(st.mesh().num_alive(), 2 * st.num_points() + 1);
    }

    #[test]
    fn exact_run_builds_delaunay() {
        let mut alg = DelaunayIncremental::random(150, 1 << 13, 3);
        let stats = run_exact(&mut alg);
        assert_eq!(stats.extra_steps, 0);
        assert_valid(&alg);
    }

    #[test]
    fn relaxed_run_builds_same_size_mesh() {
        let mut alg = DelaunayIncremental::random(150, 1 << 13, 3);
        let stats = run_relaxed(&mut alg, &mut SimMultiQueue::new(8, 7));
        assert_eq!(stats.processed, 150);
        assert_valid(&alg);
    }

    #[test]
    fn rotating_scheduler_wastes_bounded_steps() {
        let n = 200;
        let k = 6;
        let mut alg = DelaunayIncremental::random(n, 1 << 13, 5);
        let stats: ExecStats = run_relaxed(&mut alg, &mut RotatingKQueue::new(k));
        assert_valid(&alg);
        // Shape check for Theorem 3.3: extra steps far below trivial k·n.
        assert!(
            stats.extra_steps < (k * n) as u64 / 2,
            "extra steps {} vs trivial bound {}",
            stats.extra_steps,
            k * n
        );
    }

    #[test]
    fn dependency_adversary_still_terminates() {
        let n = 100;
        let mut alg = DelaunayIncremental::random(n, 1 << 12, 9);
        let stats = run_relaxed_with(&mut alg, 5, |alg, w| {
            w.iter().position(|&t| !alg.deps_satisfied(t)).unwrap_or(0)
        });
        assert_eq!(stats.processed, n as u64);
        assert_valid(&alg);
    }

    #[test]
    fn blockers_are_exactly_smaller_pending_conflicts() {
        let mut alg = DelaunayIncremental::random(60, 1 << 12, 13);
        // Insert the first 20 tasks in order.
        for t in 0..20 {
            assert!(alg.deps_satisfied(t), "prefix task {t} must be runnable");
            alg.process(t);
        }
        for t in 20..60 {
            let blockers = alg.blockers(t);
            assert_eq!(blockers.is_empty(), alg.deps_satisfied(t));
            for b in blockers {
                assert!(b > 19 && b < t);
            }
        }
    }

    #[test]
    fn dependency_lists_are_backward_and_sparse() {
        let pts = rsched_geometry::random_points(500, 1 << 13, 23);
        let deps = DelaunayIncremental::dependency_lists(&pts);
        assert_eq!(deps.len(), 500);
        assert!(deps[0].is_empty(), "first insertion depends on nothing");
        let mut total = 0usize;
        for (v, list) in deps.iter().enumerate() {
            for &u in list {
                assert!((u as usize) < v);
            }
            total += list.len();
        }
        // Random-order incremental Delaunay: expected O(1) dependencies per
        // task once the mesh is non-trivial.
        let mean = total as f64 / 500.0;
        assert!(mean < 8.0, "mean dependency count {mean} too high");
    }

    #[test]
    fn transactional_delaunay_commits_with_bounded_aborts() {
        use rsched_core::{run_transactional, TxConfig, TxStrategy};
        let pts = rsched_geometry::random_points(800, 1 << 13, 29);
        let deps = DelaunayIncremental::dependency_lists(&pts);
        let oracle = |i: usize, j: usize| deps[j].binary_search(&(i as u32)).is_ok();
        let stats = run_transactional(
            800,
            oracle,
            TxConfig {
                k: 8,
                duration: 4,
                strategy: TxStrategy::Random,
                seed: 3,
            },
        );
        assert_eq!(stats.commits, 800);
        let bound = rsched_core::theory::thm43_aborts(8, stats.max_contention, 800);
        assert!((stats.aborts as f64) < bound);
    }

    #[test]
    fn pending_conflicts_decay_with_insertion_index() {
        // The conflict-count decay underlying p_ij ≤ C/i: the number of
        // *pending points* encroached by the i-th insertion shrinks as the
        // mesh refines (each cavity stays O(1) triangles, but each triangle
        // holds ~n/i pending points after i insertions).
        let mut alg = DelaunayIncremental::random(400, 1 << 14, 17);
        let mut early = 0usize;
        for t in 0..40 {
            early += alg.state().pending_in_cavity(t as u32).len();
            alg.process(t);
        }
        for t in 40..360 {
            alg.process(t);
        }
        let mut late = 0usize;
        for t in 360..400 {
            late += alg.state().pending_in_cavity(t as u32).len();
            alg.process(t);
        }
        assert!(
            late * 4 < early,
            "pending conflicts should decay sharply: early {early}, late {late}"
        );
    }
}
