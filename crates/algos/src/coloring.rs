//! Greedy graph coloring as an incremental algorithm.
//!
//! Same dependency structure as greedy MIS (a vertex depends on its
//! higher-priority neighbours) but the processing step assigns the smallest
//! colour unused by already-coloured neighbours. Included because the
//! paper's introduction uses "greedy graph coloring on a dense graph" as the
//! canonical example of an algorithm with *low dependency depth but high
//! speculative overhead* — the case where relaxation genuinely hurts — which
//! the ablation benchmarks exercise.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsched_core::IncrementalAlgorithm;
use rsched_graph::CsrGraph;

/// Colour value for an unprocessed vertex.
pub const UNCOLORED: u32 = u32::MAX;

/// Greedy colouring over a graph with a (random) vertex priority order.
///
/// # Examples
///
/// ```
/// use rsched_algos::GreedyColoring;
/// use rsched_core::run_relaxed;
/// use rsched_graph::gen::random_gnm;
/// use rsched_queues::SimMultiQueue;
///
/// let g = random_gnm(100, 300, 1..=10, 1);
/// let mut alg = GreedyColoring::new(&g, 2);
/// run_relaxed(&mut alg, &mut SimMultiQueue::new(4, 3));
/// assert!(alg.verify_proper());
/// ```
pub struct GreedyColoring<'g> {
    graph: &'g CsrGraph,
    perm: Vec<u32>,
    label_of: Vec<usize>,
    processed: Vec<bool>,
    color: Vec<u32>,
    n_processed: usize,
}

impl<'g> GreedyColoring<'g> {
    /// Greedy colouring with a seeded random priority permutation.
    pub fn new(graph: &'g CsrGraph, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(seed));
        Self::with_permutation(graph, perm)
    }

    /// Greedy colouring with an explicit permutation (`perm[label] = vertex`).
    pub fn with_permutation(graph: &'g CsrGraph, perm: Vec<u32>) -> Self {
        let n = graph.num_vertices();
        assert_eq!(perm.len(), n);
        let mut label_of = vec![usize::MAX; n];
        for (label, &v) in perm.iter().enumerate() {
            label_of[v as usize] = label;
        }
        assert!(
            label_of.iter().all(|&l| l != usize::MAX),
            "perm must be a permutation"
        );
        GreedyColoring {
            graph,
            perm,
            label_of,
            processed: vec![false; n],
            color: vec![UNCOLORED; n],
            n_processed: 0,
        }
    }

    /// Colour of vertex `v` ([`UNCOLORED`] until processed).
    pub fn color_of(&self, v: usize) -> u32 {
        self.color[v]
    }

    /// Number of distinct colours used so far.
    pub fn num_colors(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for &c in &self.color {
            if c != UNCOLORED {
                seen.insert(c);
            }
        }
        seen.len()
    }

    /// `true` iff the colouring is proper over all processed vertices.
    pub fn verify_proper(&self) -> bool {
        self.graph.edges().all(|(u, v, _)| {
            self.color[u] == UNCOLORED
                || self.color[v] == UNCOLORED
                || self.color[u] != self.color[v]
        })
    }

    /// Sequential reference colouring under the same permutation.
    pub fn sequential_reference(graph: &CsrGraph, perm: &[u32]) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut color = vec![UNCOLORED; n];
        let mut used = Vec::new();
        for &v in perm {
            let v = v as usize;
            used.clear();
            for (u, _) in graph.neighbors(v) {
                if color[u] != UNCOLORED {
                    used.push(color[u]);
                }
            }
            used.sort_unstable();
            let mut c = 0u32;
            for &u in &used {
                if u == c {
                    c += 1;
                } else if u > c {
                    break;
                }
            }
            color[v] = c;
        }
        color
    }
}

impl IncrementalAlgorithm for GreedyColoring<'_> {
    fn num_tasks(&self) -> usize {
        self.perm.len()
    }

    fn deps_satisfied(&self, task: usize) -> bool {
        let v = self.perm[task] as usize;
        self.graph
            .neighbors(v)
            .all(|(u, _)| self.label_of[u] > task || self.processed[self.label_of[u]])
    }

    fn process(&mut self, task: usize) {
        debug_assert!(!self.processed[task]);
        let v = self.perm[task] as usize;
        let mut used: Vec<u32> = self
            .graph
            .neighbors(v)
            .filter_map(|(u, _)| {
                let c = self.color[u];
                // Only already-coloured, *higher-priority* neighbours
                // constrain the greedy choice (lower-priority ones are not
                // yet coloured under a dependency-respecting schedule).
                (c != UNCOLORED).then_some(c)
            })
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0u32;
        for &u in &used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        self.color[v] = c;
        self.processed[task] = true;
        self.n_processed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{run_exact, run_relaxed};
    use rsched_graph::gen::{complete_graph, grid_road, random_gnm};
    use rsched_queues::{RotatingKQueue, SimMultiQueue};

    #[test]
    fn exact_matches_reference() {
        let g = random_gnm(200, 800, 1..=10, 4);
        let mut alg = GreedyColoring::new(&g, 6);
        let perm = alg.perm.clone();
        run_exact(&mut alg);
        assert_eq!(alg.color, GreedyColoring::sequential_reference(&g, &perm));
        assert!(alg.verify_proper());
    }

    #[test]
    fn relaxed_matches_reference_exactly() {
        // Coloring depends only on higher-priority neighbours, all of which
        // are processed before a task runs: the relaxed result is identical
        // to the sequential one (determinism despite out-of-order execution).
        let g = grid_road(16, 16, 1);
        let mut alg = GreedyColoring::new(&g, 2);
        let perm = alg.perm.clone();
        run_relaxed(&mut alg, &mut SimMultiQueue::new(8, 9));
        assert_eq!(alg.color, GreedyColoring::sequential_reference(&g, &perm));
    }

    #[test]
    fn complete_graph_uses_n_colors_and_serializes() {
        let n = 30;
        let g = complete_graph(n, 1..=5, 0);
        let mut alg = GreedyColoring::new(&g, 0);
        let stats = run_relaxed(&mut alg, &mut RotatingKQueue::new(8));
        assert_eq!(alg.num_colors(), n, "K_n needs n colours");
        assert!(alg.verify_proper());
        // The introduction's point: dense dependencies make speculation
        // useless — extra steps comparable to k·n, unlike the sparse cases.
        assert!(stats.extra_steps as usize > n);
    }

    #[test]
    fn grid_uses_few_colors() {
        let g = grid_road(20, 20, 3);
        let mut alg = GreedyColoring::new(&g, 5);
        run_relaxed(&mut alg, &mut SimMultiQueue::new(4, 4));
        assert!(alg.verify_proper());
        // Greedy on a grid (max degree 4) needs at most 5 colours.
        assert!(alg.num_colors() <= 5);
    }
}
