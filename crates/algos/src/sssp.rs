//! SSSP under relaxed scheduling (Section 6, Algorithm 3; experiments of
//! Section 7).
//!
//! Three executors:
//!
//! * [`relaxed_sssp_seq`] — Algorithm 3 verbatim in the **sequential
//!   model**: one processor, any [`RelaxedQueue`] with `DecreaseKey`
//!   (adversarial, MultiQueue, SprayList, rotating, or exact). The returned
//!   pop count is the quantity Theorem 6.1 bounds by
//!   `n + O(k² · d_max / w_min)`.
//! * [`parallel_sssp`] — the **concurrent** variant behind Figures 1 and 2:
//!   worker threads share an atomic distance array and a lock-based
//!   [`ConcurrentMultiQueue`] (queues = multiplier × threads) with
//!   `push_or_decrease`; scheduling, termination detection and statistics
//!   come from the shared `rsched-runtime` worker pool — the SSSP-specific
//!   code is just the edge-relaxation task handler.
//! * [`parallel_sssp_duplicates`] — the DecreaseKey **ablation** (Section
//!   6's discussion): same algorithm over a duplicate-insertion MultiQueue,
//!   where outdated copies show up as stale pops instead of being updated
//!   in place.
//!
//! Correctness argument for the concurrent variant: `dist[v]` only ever
//! decreases (CAS loop), every successful decrease enqueues `v`, and a
//! vertex popped at priority `d > dist[v]` is discarded, so the distances
//! converge to the true shortest paths and the queue drains — the classic
//! argument the paper refers to ("the distance at each vertex is guaranteed
//! to eventually converge to the minimum").

use rsched_graph::{CsrGraph, Weight, INF};
use rsched_queues::{
    ConcurrentSprayList, DuplicateMultiQueue, MutexHeapMultiQueue, QueueBuilder, RelaxedQueue,
};
use rsched_runtime::{run, RuntimeConfig, Scheduler, TaskOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Result of a sequential-model relaxed SSSP run.
#[derive(Clone, Debug)]
pub struct SeqSsspStats {
    /// Final distances (exact shortest paths).
    pub dist: Vec<Weight>,
    /// Total `Q_k.pop()` operations — the Theorem 6.1 quantity.
    pub pops: u64,
    /// Pops that performed edge relaxations (vertex processings).
    pub executed: u64,
    /// Pops discarded because the popped distance was outdated.
    pub stale: u64,
    /// Edge relaxations that improved a distance.
    pub relaxations: u64,
}

impl SeqSsspStats {
    /// `pops / reachable` — overhead relative to the exact scheduler, which
    /// pops each reachable vertex exactly once.
    pub fn overhead(&self) -> f64 {
        let reachable = self.dist.iter().filter(|&&d| d != INF).count();
        if reachable == 0 {
            return 1.0;
        }
        self.pops as f64 / reachable as f64
    }
}

/// Algorithm 3 of the paper against any relaxed queue with `DecreaseKey`.
///
/// # Examples
///
/// ```
/// use rsched_algos::relaxed_sssp_seq;
/// use rsched_graph::{gen::random_gnm, dijkstra};
/// use rsched_queues::SimMultiQueue;
///
/// let g = random_gnm(300, 1500, 1..=100, 5);
/// let stats = relaxed_sssp_seq(&g, 0, &mut SimMultiQueue::keyed(8, 3));
/// assert_eq!(stats.dist, dijkstra(&g, 0).dist);
/// assert!(stats.pops >= stats.executed);
/// ```
pub fn relaxed_sssp_seq<Q: RelaxedQueue<Weight>>(
    g: &CsrGraph,
    src: usize,
    queue: &mut Q,
) -> SeqSsspStats {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[src] = 0;
    queue.insert(src, 0);
    let mut stats = SeqSsspStats {
        dist: Vec::new(),
        pops: 0,
        executed: 0,
        stale: 0,
        relaxations: 0,
    };
    while let Some((v, cur_dist)) = queue.pop_relaxed() {
        stats.pops += 1;
        if cur_dist > dist[v] {
            stats.stale += 1;
            continue; // outdated entry (only possible without DecreaseKey)
        }
        stats.executed += 1;
        for (u, w) in g.neighbors(v) {
            let nd = cur_dist + w;
            if nd < dist[u] {
                stats.relaxations += 1;
                if queue.contains(u) {
                    let ok = queue.decrease_key(u, nd);
                    debug_assert!(ok);
                } else {
                    queue.insert(u, nd);
                }
                dist[u] = nd;
            }
        }
    }
    stats.dist = dist;
    stats
}

/// Configuration for the concurrent SSSP executors.
#[derive(Clone, Copy, Debug)]
pub struct ParSsspConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Internal queues = `queue_multiplier × threads` (the paper uses 2 for
    /// Figure 1 and sweeps 1..8 in Figure 2).
    pub queue_multiplier: usize,
    /// Base RNG seed (per-thread seeds derive from it).
    pub seed: u64,
}

impl Default for ParSsspConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            queue_multiplier: 2,
            seed: 0,
        }
    }
}

/// Result of a concurrent SSSP run.
#[derive(Clone, Debug)]
pub struct ParSsspStats {
    /// Final distances (exact shortest paths).
    pub dist: Vec<Weight>,
    /// Tasks processed (pops that performed edge relaxation) — the
    /// numerator of the paper's Figure 1 *overhead* metric.
    pub executed: u64,
    /// Total pops, including stale ones.
    pub pops: u64,
    /// Stale pops (outdated distance at pop time).
    pub stale: u64,
    /// Wall-clock execution time (workers only, excluding graph setup).
    pub wall: Duration,
}

impl ParSsspStats {
    /// `executed / reachable` — the paper's relaxation overhead ("the
    /// average number of tasks executed in a concurrent execution divided by
    /// the number of tasks executed in a sequential execution").
    pub fn overhead(&self) -> f64 {
        let reachable = self.dist.iter().filter(|&&d| d != INF).count();
        if reachable == 0 {
            return 1.0;
        }
        self.executed as f64 / reachable as f64
    }
}

/// The shared concurrent-SSSP task handler over any runtime [`Scheduler`]:
/// pop a `(vertex, distance)` task, drop it if stale, otherwise CAS-relax
/// every outgoing edge and spawn the improved neighbours. The scheduler
/// determines the ablation: keyed MultiQueue (decrease-key), SprayList, or
/// duplicate-insertion MultiQueue.
fn parallel_sssp_on<S: Scheduler<Weight>>(
    g: &CsrGraph,
    src: usize,
    cfg: ParSsspConfig,
    queue: &S,
) -> ParSsspStats {
    assert!(cfg.threads >= 1 && cfg.queue_multiplier >= 1);
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Release);
    let stats = run(
        queue,
        RuntimeConfig {
            threads: cfg.threads,
            seed: cfg.seed,
            ..RuntimeConfig::default()
        },
        [(src, 0)],
        |w, v, d| {
            if d > dist[v].load(Ordering::Acquire) {
                return TaskOutcome::Stale;
            }
            for (u, wt) in g.neighbors(v) {
                let nd = d + wt;
                let mut cur = dist[u].load(Ordering::Acquire);
                while nd < cur {
                    match dist[u].compare_exchange_weak(
                        cur,
                        nd,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            w.spawn(u, nd);
                            break;
                        }
                        Err(now) => cur = now,
                    }
                }
            }
            TaskOutcome::Executed
        },
    );
    ParSsspStats {
        dist: dist.into_iter().map(|d| d.into_inner()).collect(),
        executed: stats.total.executed,
        pops: stats.total.pops,
        stale: stats.total.stale,
        wall: stats.wall,
    }
}

/// Concurrent SSSP over a keyed [`ConcurrentMultiQueue`] with
/// `push_or_decrease` (the Section 7 experiment engine).
///
/// Since PR 3 the MultiQueue's default shard backend is the lock-free
/// skiplist (`rsched_queues::skipshard::SkipShard`), so the scheduler's
/// pop path acquires no mutex; [`parallel_sssp_mutexheap`] runs the same
/// algorithm on the mutex-per-shard baseline for comparison
/// (`mq_contention` in `rsched-bench` sweeps both under contention).
///
/// # Examples
///
/// ```
/// use rsched_algos::{parallel_sssp, ParSsspConfig};
/// use rsched_graph::{gen::random_gnm, dijkstra};
///
/// let g = random_gnm(500, 2500, 1..=100, 9);
/// let stats = parallel_sssp(&g, 0, ParSsspConfig { threads: 4, queue_multiplier: 2, seed: 1 });
/// assert_eq!(stats.dist, dijkstra(&g, 0).dist);
/// ```
pub fn parallel_sssp(g: &CsrGraph, src: usize, cfg: ParSsspConfig) -> ParSsspStats {
    let queue = QueueBuilder::new(cfg.threads * cfg.queue_multiplier)
        .universe(g.num_vertices())
        .multiqueue::<Weight>();
    parallel_sssp_on(g, src, cfg, &queue)
}

/// [`parallel_sssp`] on the mutex-per-shard MultiQueue baseline — the
/// pre-PR 3 scheduler, kept callable so the lock-free/locked comparison
/// is one engine swap rather than two codebases.
pub fn parallel_sssp_mutexheap(g: &CsrGraph, src: usize, cfg: ParSsspConfig) -> ParSsspStats {
    let queue: MutexHeapMultiQueue<Weight> = QueueBuilder::new(cfg.threads * cfg.queue_multiplier)
        .universe(g.num_vertices())
        .multiqueue_on();
    parallel_sssp_on(g, src, cfg, &queue)
}

/// Concurrent SSSP over the sharded [`ConcurrentSprayList`] — the paper's
/// other cited DecreaseKey-capable relaxed scheduler (Section 6 mentions
/// both the SprayList and MultiQueues as schedulers supporting the
/// operation). Semantics and statistics match [`parallel_sssp`].
pub fn parallel_sssp_spraylist(g: &CsrGraph, src: usize, cfg: ParSsspConfig) -> ParSsspStats {
    let queue = ConcurrentSprayList::<Weight>::new(
        cfg.threads * cfg.queue_multiplier,
        cfg.threads.max(2),
        cfg.seed,
    );
    parallel_sssp_on(g, src, cfg, &queue)
}

/// The DecreaseKey ablation: concurrent SSSP over a duplicate-insertion
/// MultiQueue (no in-place updates; every improvement enqueues a fresh
/// copy, and outdated copies surface as stale pops).
pub fn parallel_sssp_duplicates(g: &CsrGraph, src: usize, cfg: ParSsspConfig) -> ParSsspStats {
    let queue = DuplicateMultiQueue::<Weight>::new(cfg.threads * cfg.queue_multiplier);
    parallel_sssp_on(g, src, cfg, &queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{AdversarialScheduler, AdversaryStrategy};
    use rsched_graph::analysis::num_reachable;
    use rsched_graph::gen::{bucket_chain, grid_road, path_graph, power_law, random_gnm};
    use rsched_graph::{dijkstra, GraphBuilder};
    use rsched_queues::{Exact, IndexedBinaryHeap, RotatingKQueue, SimMultiQueue, SprayList};

    #[test]
    fn seq_exact_queue_matches_dijkstra_with_n_pops() {
        let g = random_gnm(400, 2000, 1..=100, 1);
        let want = dijkstra(&g, 0);
        let stats = relaxed_sssp_seq(&g, 0, &mut Exact(IndexedBinaryHeap::new()));
        assert_eq!(stats.dist, want.dist);
        assert_eq!(
            stats.pops, want.pops,
            "exact scheduler pops once per vertex"
        );
        assert_eq!(stats.stale, 0);
        assert!((stats.overhead() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seq_correct_under_every_scheduler() {
        let g = grid_road(20, 20, 2);
        let want = dijkstra(&g, 0).dist;
        let stats = relaxed_sssp_seq(&g, 0, &mut SimMultiQueue::keyed(8, 3));
        assert_eq!(stats.dist, want, "MultiQueue");
        let stats = relaxed_sssp_seq(&g, 0, &mut RotatingKQueue::new(9));
        assert_eq!(stats.dist, want, "RotatingK");
        let stats = relaxed_sssp_seq(&g, 0, &mut SprayList::new(4, 5));
        assert_eq!(stats.dist, want, "SprayList");
        let stats = relaxed_sssp_seq(
            &g,
            0,
            &mut AdversarialScheduler::new(8, AdversaryStrategy::MaxRank),
        );
        assert_eq!(stats.dist, want, "Adversarial MaxRank");
    }

    #[test]
    fn seq_relaxed_does_rework_on_paths() {
        // A long path with a relaxed scheduler: vertices get processed at
        // provisional distances and reprocessed later — pops > n.
        let g = path_graph(500, 5);
        let stats = relaxed_sssp_seq(
            &g,
            0,
            &mut AdversarialScheduler::new(8, AdversaryStrategy::MaxRank),
        );
        assert_eq!(stats.dist, dijkstra(&g, 0).dist);
        assert_eq!(stats.stale, 0, "DecreaseKey leaves no outdated entries");
        // On a directed path each vertex enters the queue exactly once
        // (its distance is final when first relaxed), so pops == n even
        // adversarially. The interesting rework shows on bucket chains:
        let g2 = bucket_chain(50, 4, 10);
        let s2 = relaxed_sssp_seq(
            &g2,
            0,
            &mut AdversarialScheduler::new(16, AdversaryStrategy::MaxRank),
        );
        assert_eq!(s2.dist, dijkstra(&g2, 0).dist);
        assert!(
            s2.executed >= num_reachable(&g2, 0) as u64,
            "each vertex processed at least once"
        );
    }

    #[test]
    fn thm61_pop_bound_holds_for_rotating_scheduler() {
        // Deterministic k-relaxed scheduler: pops ≤ n + c·k²·(dmax/wmin).
        let g = bucket_chain(40, 6, 10); // dmax/wmin = 40
        let n_reach = num_reachable(&g, 0) as u64;
        for k in [2usize, 4, 8] {
            let stats = relaxed_sssp_seq(&g, 0, &mut RotatingKQueue::new(k));
            assert_eq!(stats.dist, dijkstra(&g, 0).dist);
            let bound = n_reach as f64 + 4.0 * (k * k) as f64 * 40.0;
            assert!(
                (stats.pops as f64) < bound,
                "k={k}: pops {} exceed Theorem 6.1 shape {bound}",
                stats.pops
            );
        }
    }

    #[test]
    fn parallel_matches_dijkstra_on_all_graph_families() {
        let graphs = [
            random_gnm(1000, 5000, 1..=100, 4),
            grid_road(32, 32, 5),
            power_law(1000, 5, 1..=100, 6),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let want = dijkstra(g, 0).dist;
            let stats = parallel_sssp(
                g,
                0,
                ParSsspConfig {
                    threads: 4,
                    queue_multiplier: 2,
                    seed: 42,
                },
            );
            assert_eq!(stats.dist, want, "graph family {i}");
            let reachable = want.iter().filter(|&&d| d != INF).count() as u64;
            assert!(stats.executed >= reachable);
            assert!(stats.overhead() >= 1.0);
        }
    }

    #[test]
    fn parallel_single_thread_single_queue_is_nearly_exact() {
        let g = random_gnm(500, 2500, 1..=100, 7);
        let stats = parallel_sssp(
            &g,
            0,
            ParSsspConfig {
                threads: 1,
                queue_multiplier: 1,
                seed: 0,
            },
        );
        assert_eq!(stats.dist, dijkstra(&g, 0).dist);
        // One queue = exact order = every vertex processed exactly once.
        let reachable = stats.dist.iter().filter(|&&d| d != INF).count() as u64;
        assert_eq!(stats.executed, reachable);
        assert_eq!(stats.stale, 0);
    }

    #[test]
    fn parallel_duplicates_matches_dijkstra() {
        let g = grid_road(24, 24, 8);
        let want = dijkstra(&g, 0).dist;
        let stats = parallel_sssp_duplicates(
            &g,
            0,
            ParSsspConfig {
                threads: 4,
                queue_multiplier: 2,
                seed: 3,
            },
        );
        assert_eq!(stats.dist, want);
        // Without DecreaseKey, stale pops are the norm on dense relaxations.
        assert!(stats.pops >= stats.executed);
    }

    #[test]
    fn parallel_mutexheap_baseline_matches_dijkstra() {
        // Both shard backends run the identical engine; distances (and
        // the executed >= reachable invariant) must agree with Dijkstra.
        let g = random_gnm(800, 4000, 1..=100, 21);
        let want = dijkstra(&g, 0).dist;
        let stats = parallel_sssp_mutexheap(
            &g,
            0,
            ParSsspConfig {
                threads: 4,
                queue_multiplier: 2,
                seed: 11,
            },
        );
        assert_eq!(stats.dist, want);
        let reachable = want.iter().filter(|&&d| d != INF).count() as u64;
        assert!(stats.executed >= reachable);
    }

    #[test]
    fn parallel_spraylist_matches_dijkstra() {
        let g = random_gnm(800, 4000, 1..=100, 12);
        let want = dijkstra(&g, 0).dist;
        let stats = parallel_sssp_spraylist(
            &g,
            0,
            ParSsspConfig {
                threads: 4,
                queue_multiplier: 2,
                seed: 5,
            },
        );
        assert_eq!(stats.dist, want);
        let reachable = want.iter().filter(|&&d| d != INF).count() as u64;
        assert!(stats.executed >= reachable);
    }

    #[test]
    fn parallel_disconnected_source_component() {
        let mut b = GraphBuilder::new(10);
        b.add_undirected_edge(0, 1, 5);
        b.add_undirected_edge(2, 3, 5);
        let g = b.build();
        let stats = parallel_sssp(&g, 0, ParSsspConfig::default());
        assert_eq!(stats.dist[1], 5);
        assert_eq!(stats.dist[2], INF);
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn parallel_stress_many_threads_small_graph() {
        // More threads than useful work: exercises termination detection.
        let g = path_graph(50, 1);
        for seed in 0..3 {
            let stats = parallel_sssp(
                &g,
                0,
                ParSsspConfig {
                    threads: 8,
                    queue_multiplier: 2,
                    seed,
                },
            );
            assert_eq!(stats.dist, dijkstra(&g, 0).dist, "seed {seed}");
        }
    }
}
