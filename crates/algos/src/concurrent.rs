//! Thread-safe implementations of the iterative/incremental algorithms for
//! the concurrent execution model ([`run_relaxed_parallel`]).
//!
//! Each implementation keeps its state in atomics and publishes task
//! completion with `Release`/`Acquire` ordering, so "all my smaller-label
//! dependencies are processed" (checked before `process` runs) implies their
//! state writes are visible. Because a task is only processed after its
//! dependencies, the results are **identical** to the sequential algorithm's
//! — determinism despite parallel, out-of-order scheduling, which the tests
//! verify against the sequential references.
//!
//! [`run_relaxed_parallel`]: rsched_core::parallel::run_relaxed_parallel

use crate::bst_sort::BstSort;
use rsched_core::parallel::ConcurrentIncremental;
use rsched_graph::CsrGraph;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Concurrent greedy maximal independent set (lexicographically first under
/// the given permutation).
///
/// # Examples
///
/// ```
/// use rsched_algos::concurrent::ConcurrentMis;
/// use rsched_core::parallel::run_relaxed_parallel;
/// use rsched_graph::gen::random_gnm;
///
/// let g = random_gnm(300, 900, 1..=10, 1);
/// let alg = ConcurrentMis::new(&g, 5);
/// let stats = run_relaxed_parallel(&alg, 4, 2, 9);
/// assert_eq!(stats.processed, 300);
/// assert!(!alg.independent_set().is_empty());
/// ```
pub struct ConcurrentMis<'g> {
    graph: &'g CsrGraph,
    perm: Vec<u32>,
    label_of: Vec<usize>,
    processed: Vec<AtomicBool>,
    in_mis: Vec<AtomicBool>,
}

impl<'g> ConcurrentMis<'g> {
    /// Concurrent greedy MIS with a seeded random priority permutation.
    pub fn new(graph: &'g CsrGraph, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = graph.num_vertices();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        Self::with_permutation(graph, perm)
    }

    /// Concurrent greedy MIS with an explicit permutation.
    pub fn with_permutation(graph: &'g CsrGraph, perm: Vec<u32>) -> Self {
        let n = graph.num_vertices();
        assert_eq!(perm.len(), n);
        let mut label_of = vec![usize::MAX; n];
        for (label, &v) in perm.iter().enumerate() {
            label_of[v as usize] = label;
        }
        assert!(label_of.iter().all(|&l| l != usize::MAX));
        ConcurrentMis {
            graph,
            perm,
            label_of,
            processed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            in_mis: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// The priority permutation (`perm[label] = vertex`).
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Selected vertices (complete once execution finishes).
    pub fn independent_set(&self) -> Vec<usize> {
        self.in_mis
            .iter()
            .enumerate()
            .filter(|(_, m)| m.load(Ordering::Acquire))
            .map(|(v, _)| v)
            .collect()
    }
}

impl ConcurrentIncremental for ConcurrentMis<'_> {
    fn num_tasks(&self) -> usize {
        self.perm.len()
    }

    fn deps_satisfied(&self, task: usize) -> bool {
        let v = self.perm[task] as usize;
        self.graph.neighbors(v).all(|(u, _)| {
            let lu = self.label_of[u];
            lu > task || self.processed[lu].load(Ordering::Acquire)
        })
    }

    fn process(&self, task: usize) {
        let v = self.perm[task] as usize;
        let blocked = self
            .graph
            .neighbors(v)
            .any(|(u, _)| self.in_mis[u].load(Ordering::Acquire));
        self.in_mis[v].store(!blocked, Ordering::Relaxed);
        let was = self.processed[task].swap(true, Ordering::AcqRel);
        debug_assert!(!was, "task {task} processed twice");
    }
}

/// Colour value for an unprocessed vertex in [`ConcurrentColoring`].
const UNCOLORED: u32 = u32::MAX;

/// Concurrent greedy graph colouring (first-fit under the permutation).
pub struct ConcurrentColoring<'g> {
    graph: &'g CsrGraph,
    perm: Vec<u32>,
    label_of: Vec<usize>,
    processed: Vec<AtomicBool>,
    color: Vec<AtomicU32>,
}

impl<'g> ConcurrentColoring<'g> {
    /// Concurrent greedy colouring with a seeded random permutation.
    pub fn new(graph: &'g CsrGraph, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = graph.num_vertices();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        Self::with_permutation(graph, perm)
    }

    /// Concurrent greedy colouring with an explicit permutation.
    pub fn with_permutation(graph: &'g CsrGraph, perm: Vec<u32>) -> Self {
        let n = graph.num_vertices();
        assert_eq!(perm.len(), n);
        let mut label_of = vec![usize::MAX; n];
        for (label, &v) in perm.iter().enumerate() {
            label_of[v as usize] = label;
        }
        assert!(label_of.iter().all(|&l| l != usize::MAX));
        ConcurrentColoring {
            graph,
            perm,
            label_of,
            processed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            color: (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect(),
        }
    }

    /// The priority permutation.
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Final colours (complete once execution finishes).
    pub fn colors(&self) -> Vec<u32> {
        self.color
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect()
    }

    /// `true` iff no edge connects equal colours (over coloured vertices).
    pub fn verify_proper(&self) -> bool {
        let colors = self.colors();
        self.graph.edges().all(|(u, v, _)| {
            colors[u] == UNCOLORED || colors[v] == UNCOLORED || colors[u] != colors[v]
        })
    }
}

impl ConcurrentIncremental for ConcurrentColoring<'_> {
    fn num_tasks(&self) -> usize {
        self.perm.len()
    }

    fn deps_satisfied(&self, task: usize) -> bool {
        let v = self.perm[task] as usize;
        self.graph.neighbors(v).all(|(u, _)| {
            let lu = self.label_of[u];
            lu > task || self.processed[lu].load(Ordering::Acquire)
        })
    }

    fn process(&self, task: usize) {
        let v = self.perm[task] as usize;
        let mut used: Vec<u32> = self
            .graph
            .neighbors(v)
            .filter_map(|(u, _)| {
                let c = self.color[u].load(Ordering::Acquire);
                (c != UNCOLORED).then_some(c)
            })
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0u32;
        for &u in &used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        self.color[v].store(c, Ordering::Relaxed);
        let was = self.processed[task].swap(true, Ordering::AcqRel);
        debug_assert!(!was);
    }
}

/// Concurrent BST-insertion sorting: the tree links are atomics, each
/// written exactly once (by the unique child occupying that slot), so no
/// locks are needed.
pub struct ConcurrentBstSort {
    keys: Vec<u64>,
    parent: Vec<usize>,
    processed: Vec<AtomicBool>,
    left: Vec<AtomicU32>,
    right: Vec<AtomicU32>,
}

const NO_CHILD: u32 = u32::MAX;

impl ConcurrentBstSort {
    /// Build from the same precomputed treap as the sequential [`BstSort`].
    pub fn random(n: usize, seed: u64) -> Self {
        let seq = BstSort::random(n, seed);
        let keys: Vec<u64> = (0..n).map(|v| seq.key(v)).collect();
        let parent: Vec<usize> = (0..n)
            .map(|v| seq.parent_of(v).unwrap_or(usize::MAX))
            .collect();
        ConcurrentBstSort {
            keys,
            parent,
            processed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            left: (0..n).map(|_| AtomicU32::new(NO_CHILD)).collect(),
            right: (0..n).map(|_| AtomicU32::new(NO_CHILD)).collect(),
        }
    }

    /// In-order traversal of the built tree (call after execution).
    pub fn in_order_keys(&self) -> Vec<u64> {
        let n = self.keys.len();
        if n == 0 {
            return Vec::new();
        }
        let root = (0..n)
            .find(|&v| self.parent[v] == usize::MAX)
            .expect("tree has a root");
        let mut out = Vec::with_capacity(n);
        let mut stack = Vec::new();
        let mut cur = root as u32;
        while cur != NO_CHILD || !stack.is_empty() {
            while cur != NO_CHILD {
                stack.push(cur);
                cur = self.left[cur as usize].load(Ordering::Acquire);
            }
            let v = stack.pop().expect("stack non-empty");
            out.push(self.keys[v as usize]);
            cur = self.right[v as usize].load(Ordering::Acquire);
        }
        out
    }
}

impl ConcurrentIncremental for ConcurrentBstSort {
    fn num_tasks(&self) -> usize {
        self.keys.len()
    }

    fn deps_satisfied(&self, task: usize) -> bool {
        let p = self.parent[task];
        p == usize::MAX || self.processed[p].load(Ordering::Acquire)
    }

    fn process(&self, task: usize) {
        let p = self.parent[task];
        if p != usize::MAX {
            let slot = if self.keys[task] < self.keys[p] {
                &self.left[p]
            } else {
                &self.right[p]
            };
            let old = slot.swap(task as u32, Ordering::Relaxed);
            debug_assert_eq!(old, NO_CHILD, "treap slot written twice");
        }
        let was = self.processed[task].swap(true, Ordering::AcqRel);
        debug_assert!(!was);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::GreedyColoring;
    use crate::mis::GreedyMis;
    use rsched_core::parallel::run_relaxed_parallel;
    use rsched_graph::gen::{complete_graph, grid_road, random_gnm};

    #[test]
    fn concurrent_mis_equals_sequential_reference() {
        let g = random_gnm(500, 2500, 1..=10, 3);
        for seed in 0..3u64 {
            let alg = ConcurrentMis::new(&g, 11);
            let stats = run_relaxed_parallel(&alg, 4, 2, seed);
            assert_eq!(stats.processed, 500);
            let want = GreedyMis::sequential_reference(&g, alg.permutation());
            let got = alg.independent_set();
            let want: Vec<usize> = want
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(v, _)| v)
                .collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn concurrent_coloring_equals_sequential_reference() {
        let g = grid_road(20, 20, 5);
        let alg = ConcurrentColoring::new(&g, 13);
        let stats = run_relaxed_parallel(&alg, 4, 2, 1);
        assert_eq!(stats.processed as usize, g.num_vertices());
        assert!(alg.verify_proper());
        let want = GreedyColoring::sequential_reference(&g, alg.permutation());
        assert_eq!(alg.colors(), want);
    }

    #[test]
    fn concurrent_bst_sort_sorts() {
        let n = 2000;
        let alg = ConcurrentBstSort::random(n, 17);
        let stats = run_relaxed_parallel(&alg, 4, 2, 2);
        assert_eq!(stats.processed, n as u64);
        assert_eq!(alg.in_order_keys(), (0..n as u64).collect::<Vec<_>>());
        assert!(stats.extra_steps > 0, "treap chains force re-queues");
    }

    #[test]
    fn dense_graph_serializes_but_completes() {
        let g = complete_graph(60, 1..=5, 0);
        let alg = ConcurrentMis::new(&g, 1);
        let stats = run_relaxed_parallel(&alg, 4, 2, 4);
        assert_eq!(stats.processed, 60);
        assert_eq!(alg.independent_set().len(), 1);
        // Total serialization: heavy re-queueing expected.
        assert!(stats.extra_steps > 60);
    }
}
