//! Greedy k-core decomposition over a relaxed FIFO work queue.
//!
//! The *k-core* of a graph is its unique maximal subgraph in which every
//! vertex has degree at least `k`; it is computed by *peeling*:
//! repeatedly delete any vertex of degree `< k`. Peeling is
//! order-independent — whatever order vertices are deleted in, the fixed
//! point is the same — which makes it the ideal stress case for a
//! relaxed FIFO scheduler: the queue's rank errors reorder deletions
//! freely and the result is still exactly the sequential k-core.
//!
//! Each vertex enters the work queue at most once (the thread whose
//! decrement moves the degree from `k` to `k − 1` enqueues it, and
//! initially sub-`k` vertices are seeded), so unlike SSSP/BFS there are
//! no stale or extra pops: the interesting statistics are the steal
//! counts and per-worker pop balance from the runtime.
//!
//! The graph is expected to be symmetric (undirected edges inserted in
//! both directions, as the workspace's generators do); on an asymmetric
//! graph both the parallel and sequential versions peel by out-degree,
//! and they still agree.

use crate::sssp::ParSsspConfig;
use rsched_graph::CsrGraph;
use rsched_queues::{DCboQueue, QueueBuilder};
use rsched_runtime::{run, RuntimeConfig, TaskOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Result of a concurrent k-core peel.
#[derive(Clone, Debug)]
pub struct KcoreStats {
    /// `in_core[v]` = vertex survives in the k-core.
    pub in_core: Vec<bool>,
    /// Vertices peeled away.
    pub removed: u64,
    /// Work-queue pops (= removed: every pop peels exactly one vertex).
    pub pops: u64,
    /// Pops stolen from a foreign shard of the d-CBO queue.
    pub steals: u64,
    /// Worker wall-clock time.
    pub wall: Duration,
}

/// Sequential reference peel: the unique k-core via queue-based peeling.
///
/// # Examples
///
/// ```
/// use rsched_algos::kcore_sequential;
/// use rsched_graph::gen::complete_graph;
///
/// // K5 is its own 4-core; asking for the 5-core peels everything.
/// let g = complete_graph(5, 1..=2, 0);
/// assert!(kcore_sequential(&g, 4).iter().all(|&c| c));
/// assert!(kcore_sequential(&g, 5).iter().all(|&c| !c));
/// ```
pub fn kcore_sequential(g: &CsrGraph, k: u64) -> Vec<bool> {
    let n = g.num_vertices();
    let mut deg: Vec<u64> = (0..n).map(|v| g.neighbors(v).count() as u64).collect();
    let mut removed = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&v| deg[v] < k).collect();
    for &v in &queue {
        removed[v] = true;
    }
    while let Some(v) = queue.pop_front() {
        for (u, _) in g.neighbors(v) {
            if !removed[u] {
                deg[u] -= 1;
                if deg[u] < k {
                    removed[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    removed.iter().map(|&r| !r).collect()
}

/// Concurrent k-core peel over a relaxed FIFO work queue
/// (`shards = threads × queue_multiplier`).
///
/// Exactly equal to [`kcore_sequential`] on every graph — peeling is
/// confluent — while the deletions themselves run relaxed and parallel.
///
/// # Examples
///
/// ```
/// use rsched_algos::{parallel_kcore, kcore_sequential, ParSsspConfig};
/// use rsched_graph::gen::random_gnm;
///
/// let g = random_gnm(400, 2400, 1..=10, 8);
/// let stats = parallel_kcore(&g, 3, ParSsspConfig::default());
/// assert_eq!(stats.in_core, kcore_sequential(&g, 3));
/// ```
pub fn parallel_kcore(g: &CsrGraph, k: u64, cfg: ParSsspConfig) -> KcoreStats {
    assert!(cfg.threads >= 1 && cfg.queue_multiplier >= 1);
    let n = g.num_vertices();
    let deg: Vec<AtomicU64> = (0..n)
        .map(|v| AtomicU64::new(g.neighbors(v).count() as u64))
        .collect();
    let queue: DCboQueue<(usize, u64)> = QueueBuilder::new(cfg.threads * cfg.queue_multiplier)
        .seed(cfg.seed)
        .d_cbo();
    let seeds: Vec<(usize, u64)> = (0..n)
        .filter(|&v| deg[v].load(Ordering::Relaxed) < k)
        .map(|v| (v, 0))
        .collect();
    let processed: Vec<std::sync::atomic::AtomicBool> = (0..n)
        .map(|_| std::sync::atomic::AtomicBool::new(false))
        .collect();
    let stats = run(
        &queue,
        RuntimeConfig {
            threads: cfg.threads,
            seed: cfg.seed,
            ..RuntimeConfig::default()
        },
        seeds,
        |w, v, _| {
            let was = processed[v].swap(true, Ordering::AcqRel);
            debug_assert!(!was, "vertex {v} peeled twice");
            for (u, _) in g.neighbors(v) {
                // The thread whose decrement crosses the k threshold owns
                // the enqueue, so each vertex is queued at most once.
                // Degrees of already-peeled neighbours keep decreasing
                // below k - 1; they never re-cross.
                if deg[u].fetch_sub(1, Ordering::AcqRel) == k {
                    w.spawn(u, 0);
                }
            }
            TaskOutcome::Executed
        },
    );
    let in_core: Vec<bool> = processed
        .iter()
        .map(|p| !p.load(Ordering::Acquire))
        .collect();
    KcoreStats {
        removed: stats.total.executed,
        pops: stats.total.pops,
        steals: stats.total.steals,
        wall: stats.wall,
        in_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_graph::gen::{complete_graph, grid_road, power_law, random_gnm, star_graph};

    #[test]
    fn matches_sequential_on_graph_families() {
        let graphs = [
            random_gnm(800, 4800, 1..=10, 1),
            grid_road(25, 25, 2),
            power_law(800, 6, 1..=10, 3),
            star_graph(200, 1),
            complete_graph(40, 1..=5, 4),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for k in [1u64, 2, 3, 5, 8] {
                let want = kcore_sequential(g, k);
                for threads in [1usize, 4] {
                    let got = parallel_kcore(
                        g,
                        k,
                        ParSsspConfig {
                            threads,
                            queue_multiplier: 2,
                            seed: k ^ 7,
                        },
                    );
                    assert_eq!(got.in_core, want, "family {i}, k {k}, threads {threads}");
                    let removed = want.iter().filter(|&&c| !c).count() as u64;
                    assert_eq!(got.removed, removed, "family {i}, k {k}");
                    assert_eq!(got.pops, got.removed, "peeling has no wasted pops");
                }
            }
        }
    }

    #[test]
    fn grid_cores_match_degeneracy() {
        // A 2-D grid has minimum degree 2 (corners) and is 2-degenerate:
        // the 2-core is the whole grid and the 3-core is empty — the peel
        // cascades from the corners through the interior.
        let g = grid_road(10, 10, 0);
        let core2 = parallel_kcore(&g, 2, ParSsspConfig::default());
        assert!(core2.in_core.iter().all(|&c| c), "2-core is the whole grid");
        let core3 = parallel_kcore(&g, 3, ParSsspConfig::default());
        assert!(core3.in_core.iter().all(|&c| !c), "grids are 2-degenerate");
    }

    #[test]
    fn seed_and_thread_sweep_is_deterministic() {
        let g = random_gnm(500, 3000, 1..=10, 17);
        let want = kcore_sequential(&g, 4);
        for seed in 0..4 {
            for threads in [2usize, 8] {
                let got = parallel_kcore(
                    &g,
                    4,
                    ParSsspConfig {
                        threads,
                        queue_multiplier: 2,
                        seed,
                    },
                );
                assert_eq!(got.in_core, want, "seed {seed} threads {threads}");
            }
        }
    }
}
