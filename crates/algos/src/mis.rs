//! Greedy (lexicographically-first) maximal independent set as an
//! incremental algorithm.
//!
//! This is the flagship algorithm of the companion paper the SPAA 2019 work
//! extends ("Relaxed schedulers can efficiently parallelize iterative
//! algorithms", PODC 2018): tasks are vertices in random priority order; a
//! vertex joins the MIS iff none of its higher-priority neighbours joined.
//! The dependency of task `v` is on every neighbour with a smaller label —
//! a *fixed* task set with static dependencies, which is what makes it the
//! natural regression baseline for the dynamic algorithms of this paper.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsched_core::IncrementalAlgorithm;
use rsched_graph::CsrGraph;

/// Greedy MIS over a graph with a (random) vertex priority order.
///
/// Labels are `0..n`; task `t` decides vertex `perm[t]`.
///
/// # Examples
///
/// ```
/// use rsched_algos::GreedyMis;
/// use rsched_core::{run_relaxed, IncrementalAlgorithm};
/// use rsched_graph::gen::random_gnm;
/// use rsched_queues::SimMultiQueue;
///
/// let g = random_gnm(200, 600, 1..=10, 1);
/// let mut alg = GreedyMis::new(&g, 7);
/// run_relaxed(&mut alg, &mut SimMultiQueue::new(8, 2));
/// let mis = alg.independent_set();
/// assert!(!mis.is_empty());
/// ```
pub struct GreedyMis<'g> {
    graph: &'g CsrGraph,
    /// `perm[label]` = vertex decided by that task.
    perm: Vec<u32>,
    /// `label_of[vertex]` = its task label.
    label_of: Vec<usize>,
    processed: Vec<bool>,
    in_mis: Vec<bool>,
    n_processed: usize,
}

impl<'g> GreedyMis<'g> {
    /// Greedy MIS with a seeded random priority permutation.
    pub fn new(graph: &'g CsrGraph, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(seed));
        Self::with_permutation(graph, perm)
    }

    /// Greedy MIS with an explicit priority permutation
    /// (`perm[label] = vertex`).
    pub fn with_permutation(graph: &'g CsrGraph, perm: Vec<u32>) -> Self {
        let n = graph.num_vertices();
        assert_eq!(perm.len(), n);
        let mut label_of = vec![usize::MAX; n];
        for (label, &v) in perm.iter().enumerate() {
            label_of[v as usize] = label;
        }
        assert!(
            label_of.iter().all(|&l| l != usize::MAX),
            "perm must be a permutation"
        );
        GreedyMis {
            graph,
            perm,
            label_of,
            processed: vec![false; n],
            in_mis: vec![false; n],
            n_processed: 0,
        }
    }

    /// The vertices selected into the independent set (valid once all tasks
    /// are processed; prefix-correct during execution).
    pub fn independent_set(&self) -> Vec<usize> {
        self.in_mis
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v)
            .collect()
    }

    /// `true` iff vertex `v` was selected.
    pub fn contains(&self, v: usize) -> bool {
        self.in_mis[v]
    }

    /// Sequential reference: the lexicographically-first MIS under the same
    /// permutation, computed without the scheduler machinery.
    pub fn sequential_reference(graph: &CsrGraph, perm: &[u32]) -> Vec<bool> {
        let n = graph.num_vertices();
        let mut in_mis = vec![false; n];
        for &v in perm {
            let v = v as usize;
            let blocked = graph.neighbors(v).any(|(u, _)| in_mis[u]);
            if !blocked {
                in_mis[v] = true;
            }
        }
        in_mis
    }
}

impl IncrementalAlgorithm for GreedyMis<'_> {
    fn num_tasks(&self) -> usize {
        self.perm.len()
    }

    fn deps_satisfied(&self, task: usize) -> bool {
        let v = self.perm[task] as usize;
        self.graph
            .neighbors(v)
            .all(|(u, _)| self.label_of[u] > task || self.processed[self.label_of[u]])
    }

    fn process(&mut self, task: usize) {
        debug_assert!(!self.processed[task]);
        let v = self.perm[task] as usize;
        let blocked = self.graph.neighbors(v).any(|(u, _)| self.in_mis[u]);
        self.in_mis[v] = !blocked;
        self.processed[task] = true;
        self.n_processed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{run_exact, run_relaxed};
    use rsched_graph::gen::{complete_graph, random_gnm};
    use rsched_queues::{RotatingKQueue, SimMultiQueue};

    fn is_maximal_independent(g: &CsrGraph, in_mis: &[bool]) {
        for (u, v, _) in g.edges() {
            assert!(!(in_mis[u] && in_mis[v]), "edge ({u},{v}) inside MIS");
        }
        for v in 0..g.num_vertices() {
            if !in_mis[v] {
                assert!(
                    g.neighbors(v).any(|(u, _)| in_mis[u]),
                    "vertex {v} could be added: not maximal"
                );
            }
        }
    }

    #[test]
    fn exact_matches_reference() {
        let g = random_gnm(300, 1200, 1..=10, 2);
        let mut alg = GreedyMis::new(&g, 5);
        let perm = alg.perm.clone();
        run_exact(&mut alg);
        let want = GreedyMis::sequential_reference(&g, &perm);
        assert_eq!(alg.in_mis, want);
        is_maximal_independent(&g, &alg.in_mis);
    }

    #[test]
    fn relaxed_matches_reference_exactly() {
        // Determinism: the greedy MIS under a dependency-respecting
        // schedule equals the sequential one, whatever the relaxation.
        let g = random_gnm(300, 1500, 1..=10, 3);
        for seed in 0..3u64 {
            let mut alg = GreedyMis::new(&g, 9);
            let perm = alg.perm.clone();
            run_relaxed(&mut alg, &mut SimMultiQueue::new(16, seed));
            let want = GreedyMis::sequential_reference(&g, &perm);
            assert_eq!(alg.in_mis, want, "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_selects_exactly_top_priority() {
        // On K_n the MIS is the single highest-priority vertex; also the
        // introduction's "high fanout" stress: every task depends on all
        // smaller-label tasks.
        let g = complete_graph(40, 1..=5, 0);
        let mut alg = GreedyMis::new(&g, 1);
        let top = alg.perm[0] as usize;
        let stats = run_relaxed(&mut alg, &mut RotatingKQueue::new(6));
        assert_eq!(alg.independent_set(), vec![top]);
        // Dense dependencies force serialization: lots of extra steps.
        assert!(stats.extra_steps > 0);
    }

    #[test]
    fn edgeless_graph_selects_everything() {
        let g = rsched_graph::GraphBuilder::new(50).build();
        let mut alg = GreedyMis::new(&g, 3);
        run_relaxed(&mut alg, &mut SimMultiQueue::new(4, 1));
        assert_eq!(alg.independent_set().len(), 50);
    }
}
