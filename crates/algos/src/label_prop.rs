//! Connected components by **min-label propagation** over the relaxed
//! FIFO frontier runtime.
//!
//! Every vertex starts labelled with its own id; a task `(v, l)` lowers
//! the labels of `v`'s neighbours to `l` and re-spawns the ones it
//! improved. Labels only ever decrease (a `fetch_min`), so the fixed
//! point — every vertex carrying the minimum vertex id of its component
//! — is **confluent**: whatever order the relaxed FIFO executes tasks
//! in, the result equals the sequential reference exactly, and the
//! relaxation shows up only as wasted re-propagations (stale pops).
//!
//! This is the ROADMAP's "more FIFO workloads" item, and deliberately
//! the workload that leans hardest on the worker-session **spawn
//! batching** path: label propagation spawns in bursts (every improved
//! neighbour of a popped vertex), so parking a burst in the session
//! buffer and publishing it as one batch to the home shard is the
//! intended fast path — [`LabelPropConfig::spawn_batch`] defaults to a
//! real batch, unlike the exactness-sensitive SSSP executors.

use rsched_graph::CsrGraph;
use rsched_queues::{DCboQueue, QueueBuilder};
use rsched_runtime::{run, RuntimeConfig, TaskOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Configuration for [`parallel_label_propagation`].
#[derive(Clone, Copy, Debug)]
pub struct LabelPropConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Frontier shards = `queue_multiplier × threads`.
    pub queue_multiplier: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Home shards per worker session (locality-aware stealing).
    pub shards_per_worker: usize,
    /// Spawn-buffer capacity per worker session; label propagation is
    /// batch-friendly, so the default is a real batch (16).
    pub spawn_batch: usize,
}

impl Default for LabelPropConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            queue_multiplier: 2,
            seed: 0,
            shards_per_worker: 1,
            spawn_batch: 16,
        }
    }
}

/// Result of a concurrent label-propagation run.
#[derive(Clone, Debug)]
pub struct LabelPropStats {
    /// `label[v]` = minimum vertex id of `v`'s component.
    pub labels: Vec<u64>,
    /// Frontier pops that propagated a live label.
    pub executed: u64,
    /// Total frontier pops, including stale ones.
    pub pops: u64,
    /// Stale pops (the carried label was already beaten).
    pub stale: u64,
    /// Pops served by a worker's own home shard.
    pub home_hits: u64,
    /// Pops stolen from a foreign shard.
    pub steals: u64,
    /// Worker wall-clock time.
    pub wall: Duration,
}

impl LabelPropStats {
    /// `executed / n` — wasted-propagation overhead (1.0 = each vertex
    /// propagated exactly once, as in the sequential sweep).
    pub fn overhead(&self) -> f64 {
        if self.labels.is_empty() {
            return 1.0;
        }
        self.executed as f64 / self.labels.len() as f64
    }
}

/// Sequential reference: min-vertex-id component labels by BFS flooding.
///
/// # Examples
///
/// ```
/// use rsched_algos::label_components;
/// use rsched_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(5);
/// b.add_undirected_edge(0, 3, 1);
/// b.add_undirected_edge(4, 2, 1);
/// let g = b.build();
/// assert_eq!(label_components(&g), vec![0, 1, 2, 0, 2]);
/// ```
pub fn label_components(g: &CsrGraph) -> Vec<u64> {
    let n = g.num_vertices();
    let mut labels: Vec<u64> = vec![u64::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if labels[root] != u64::MAX {
            continue;
        }
        labels[root] = root as u64;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for (u, _) in g.neighbors(v) {
                if labels[u] == u64::MAX {
                    labels[u] = root as u64;
                    queue.push_back(u);
                }
            }
        }
    }
    labels
}

/// Concurrent connected components: min-label propagation over a d-CBO
/// relaxed FIFO frontier, exact on every graph.
///
/// The graph is expected to be symmetric (undirected edges inserted in
/// both directions, as the workspace's generators do); propagation then
/// floods each component from its minimum-id vertex.
///
/// # Examples
///
/// ```
/// use rsched_algos::{label_components, parallel_label_propagation, LabelPropConfig};
/// use rsched_graph::gen::random_gnm;
///
/// let g = random_gnm(500, 1200, 1..=10, 3);
/// let stats = parallel_label_propagation(&g, LabelPropConfig::default());
/// assert_eq!(stats.labels, label_components(&g));
/// ```
pub fn parallel_label_propagation(g: &CsrGraph, cfg: LabelPropConfig) -> LabelPropStats {
    assert!(cfg.threads >= 1 && cfg.queue_multiplier >= 1);
    let n = g.num_vertices();
    let labels: Vec<AtomicU64> = (0..n).map(|v| AtomicU64::new(v as u64)).collect();
    let frontier: DCboQueue<(usize, u64)> = QueueBuilder::new(cfg.threads * cfg.queue_multiplier)
        .seed(cfg.seed)
        .d_cbo();
    let stats = run(
        &frontier,
        RuntimeConfig {
            threads: cfg.threads,
            seed: cfg.seed,
            shards_per_worker: cfg.shards_per_worker,
            spawn_batch: cfg.spawn_batch,
            ..RuntimeConfig::default()
        },
        (0..n).map(|v| (v, v as u64)),
        |w, v, l| {
            if l > labels[v].load(Ordering::Acquire) {
                return TaskOutcome::Stale;
            }
            for (u, _) in g.neighbors(v) {
                if labels[u].fetch_min(l, Ordering::AcqRel) > l {
                    w.spawn(u, l);
                }
            }
            TaskOutcome::Executed
        },
    );
    LabelPropStats {
        labels: labels.into_iter().map(|l| l.into_inner()).collect(),
        executed: stats.total.executed,
        pops: stats.total.pops,
        stale: stats.total.stale,
        home_hits: stats.total.home_hits,
        steals: stats.total.steals,
        wall: stats.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_graph::gen::{grid_road, path_graph, power_law, random_gnm, star_graph};
    use rsched_graph::GraphBuilder;

    #[test]
    fn matches_sequential_on_graph_families() {
        let graphs = [
            random_gnm(1000, 1500, 1..=10, 4), // sparse: many components
            grid_road(24, 24, 5),
            power_law(800, 3, 1..=10, 6),
            path_graph(300, 1),
            star_graph(200, 2),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let want = label_components(g);
            for threads in [1usize, 4] {
                let stats = parallel_label_propagation(
                    g,
                    LabelPropConfig {
                        threads,
                        seed: 42,
                        ..LabelPropConfig::default()
                    },
                );
                assert_eq!(stats.labels, want, "family {i}, threads {threads}");
                assert!(stats.executed >= 1, "family {i}");
                assert_eq!(
                    stats.pops,
                    stats.executed + stats.stale,
                    "family {i}: propagation never blocks"
                );
            }
        }
    }

    #[test]
    fn disconnected_components_keep_distinct_labels() {
        let mut b = GraphBuilder::new(9);
        b.add_undirected_edge(0, 1, 1);
        b.add_undirected_edge(1, 2, 1);
        b.add_undirected_edge(5, 6, 1);
        b.add_undirected_edge(7, 8, 1);
        let g = b.build();
        let stats = parallel_label_propagation(&g, LabelPropConfig::default());
        assert_eq!(stats.labels, vec![0, 0, 0, 3, 4, 5, 5, 7, 7]);
    }

    #[test]
    fn batch_and_affinity_sweep_is_exact() {
        // The session axes must never change the fixed point — only the
        // wasted-work statistics.
        let g = random_gnm(600, 2400, 1..=10, 9);
        let want = label_components(&g);
        for spawn_batch in [1usize, 4, 64] {
            for shards_per_worker in [0usize, 1, 2] {
                let stats = parallel_label_propagation(
                    &g,
                    LabelPropConfig {
                        threads: 8,
                        spawn_batch,
                        shards_per_worker,
                        seed: spawn_batch as u64 ^ 0xA5,
                        ..LabelPropConfig::default()
                    },
                );
                assert_eq!(
                    stats.labels, want,
                    "batch {spawn_batch}, homes {shards_per_worker}"
                );
            }
        }
    }

    #[test]
    fn batched_burst_spawns_stay_exact() {
        // A star graph floods the hub's entire neighbourhood in one
        // burst — hundreds of spawns from a single handler call, parked
        // and published batch by batch through the session buffer.
        let g = star_graph(400, 1);
        let stats = parallel_label_propagation(
            &g,
            LabelPropConfig {
                threads: 2,
                spawn_batch: 64,
                seed: 7,
                ..LabelPropConfig::default()
            },
        );
        assert_eq!(stats.labels, label_components(&g));
        assert!(stats.labels.iter().all(|&l| l == 0), "star is connected");
    }
}
