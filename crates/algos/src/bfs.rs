//! Concurrent unweighted BFS over a relaxed FIFO frontier.
//!
//! The paper's schedulers relax *priority* order; the d-CBO family
//! relaxes *FIFO* order. BFS is the canonical FIFO-scheduled incremental
//! algorithm: the frontier is a queue, and expanding it slightly out of
//! order only costs wasted work, never correctness — a vertex expanded
//! at a provisional (too large) hop count is re-expanded when its true
//! distance arrives, and the monotone `fetch_min` on the distance array
//! guarantees convergence to the exact BFS layering. The same
//! stale-task argument as concurrent SSSP applies with `w ≡ 1`; the rank
//! error of the relaxed FIFO plays the role of the priority rank bound.
//!
//! Driven by the shared `rsched-runtime` worker pool with a
//! [`DCboQueue`] frontier, so the per-worker statistics include
//! choice-of-two steal counts alongside the extra-step accounting.

use crate::sssp::ParSsspConfig;
use rsched_graph::{CsrGraph, Weight, INF};
use rsched_queues::{DCboQueue, QueueBuilder};
use rsched_runtime::{run, RuntimeConfig, TaskOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Result of a concurrent relaxed-FIFO BFS run.
#[derive(Clone, Debug)]
pub struct ParBfsStats {
    /// `dist[v]` = exact hop count from the source, or [`INF`].
    pub dist: Vec<Weight>,
    /// Frontier pops that expanded a vertex.
    pub executed: u64,
    /// Total frontier pops, including stale ones.
    pub pops: u64,
    /// Stale pops (outdated hop count at pop time).
    pub stale: u64,
    /// Pops served by a worker's own home shard of the d-CBO frontier.
    pub home_hits: u64,
    /// Pops stolen from a foreign shard of the d-CBO frontier.
    pub steals: u64,
    /// Worker wall-clock time.
    pub wall: Duration,
}

impl ParBfsStats {
    /// `executed / reachable` — wasted-expansion overhead (1.0 = every
    /// vertex expanded exactly once, as in exact BFS).
    pub fn overhead(&self) -> f64 {
        let reachable = self.dist.iter().filter(|&&d| d != INF).count();
        if reachable == 0 {
            return 1.0;
        }
        self.executed as f64 / reachable as f64
    }
}

/// Concurrent BFS: hop distances from `src` via a relaxed FIFO frontier
/// (`shards = threads × queue_multiplier`).
///
/// The returned distances are **exactly** the sequential
/// [`bfs`](rsched_graph::bfs) layering, whatever the relaxation — only
/// the executed/pops overhead varies.
///
/// # Examples
///
/// ```
/// use rsched_algos::{parallel_bfs, ParSsspConfig};
/// use rsched_graph::{bfs, gen::random_gnm};
///
/// let g = random_gnm(500, 2500, 1..=10, 3);
/// let stats = parallel_bfs(&g, 0, ParSsspConfig { threads: 4, queue_multiplier: 2, seed: 5 });
/// assert_eq!(stats.dist, bfs(&g, 0));
/// assert!(stats.overhead() >= 1.0);
/// ```
pub fn parallel_bfs(g: &CsrGraph, src: usize, cfg: ParSsspConfig) -> ParBfsStats {
    assert!(cfg.threads >= 1 && cfg.queue_multiplier >= 1);
    let n = g.num_vertices();
    let frontier: DCboQueue<(usize, Weight)> =
        QueueBuilder::new(cfg.threads * cfg.queue_multiplier)
            .seed(cfg.seed)
            .d_cbo();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Release);
    let stats = run(
        &frontier,
        RuntimeConfig {
            threads: cfg.threads,
            seed: cfg.seed,
            ..RuntimeConfig::default()
        },
        [(src, 0)],
        |w, v, d| {
            if d > dist[v].load(Ordering::Acquire) {
                return TaskOutcome::Stale;
            }
            let nd = d + 1;
            for (u, _) in g.neighbors(v) {
                if dist[u].fetch_min(nd, Ordering::AcqRel) > nd {
                    w.spawn(u, nd);
                }
            }
            TaskOutcome::Executed
        },
    );
    ParBfsStats {
        dist: dist.into_iter().map(|d| d.into_inner()).collect(),
        executed: stats.total.executed,
        pops: stats.total.pops,
        stale: stats.total.stale,
        home_hits: stats.total.home_hits,
        steals: stats.total.steals,
        wall: stats.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_graph::gen::{grid_road, path_graph, power_law, random_gnm, star_graph};
    use rsched_graph::{bfs, GraphBuilder};

    #[test]
    fn matches_sequential_bfs_on_graph_families() {
        let graphs = [
            random_gnm(1000, 5000, 1..=100, 4),
            grid_road(32, 32, 5),
            power_law(1000, 5, 1..=100, 6),
            path_graph(300, 1),
            star_graph(300, 2),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let want = bfs(g, 0);
            for threads in [1usize, 4] {
                let stats = parallel_bfs(
                    g,
                    0,
                    ParSsspConfig {
                        threads,
                        queue_multiplier: 2,
                        seed: 42,
                    },
                );
                assert_eq!(stats.dist, want, "family {i}, threads {threads}");
                let reachable = want.iter().filter(|&&d| d != INF).count() as u64;
                assert!(stats.executed >= reachable, "family {i}");
                assert_eq!(
                    stats.pops,
                    stats.executed + stats.stale,
                    "family {i}: BFS tasks never block"
                );
            }
        }
    }

    #[test]
    fn disconnected_components_stay_unreached() {
        let mut b = GraphBuilder::new(8);
        b.add_undirected_edge(0, 1, 1);
        b.add_undirected_edge(1, 2, 1);
        b.add_undirected_edge(5, 6, 1);
        let g = b.build();
        let stats = parallel_bfs(&g, 0, ParSsspConfig::default());
        assert_eq!(stats.dist[..3], [0, 1, 2]);
        assert_eq!(stats.dist[5], INF);
        assert_eq!(stats.executed, 3);
    }

    #[test]
    fn seed_sweep_is_always_exact() {
        let g = random_gnm(600, 3600, 1..=10, 9);
        let want = bfs(&g, 0);
        for seed in 0..5 {
            let stats = parallel_bfs(
                &g,
                0,
                ParSsspConfig {
                    threads: 8,
                    queue_multiplier: 2,
                    seed,
                },
            );
            assert_eq!(stats.dist, want, "seed {seed}");
        }
    }
}
