//! Parallel Δ-stepping (Meyer & Sanders 2003) — the bucket-synchronous
//! baseline the paper's Theorem 6.1 analysis is modelled on.
//!
//! Where the relaxed SSSP of [`crate::sssp`] lets a MultiQueue *implicitly*
//! relax the processing order, Δ-stepping makes the relaxation explicit:
//! vertices within one Δ-wide distance bucket are processed in parallel in
//! any order. Comparing the two engines on the same graphs shows they waste
//! work for the same reason (re-processing vertices whose tentative
//! distance later improves) — which is exactly the correspondence the
//! Theorem 6.1 proof exploits.
//!
//! Two engines live here:
//!
//! * [`parallel_delta_stepping`] is bucket-synchronous: a coordinator
//!   advances through buckets; each light-edge iteration and the final
//!   heavy-edge pass fan the current frontier out over the runtime's
//!   fork-join helper ([`rsched_runtime::map_chunks`]), whose workers
//!   relax edges with atomic fetch-min updates and collect bucket
//!   insertions locally.
//! * [`relaxed_delta_stepping`] is barrier-free: it runs on the
//!   bucketed relaxed-FIFO hybrid
//!   ([`BucketFifoQueue`](rsched_queues::BucketFifoQueue)), which owns
//!   the Δ-quantization — a relaxed FIFO of buckets, each bucket a
//!   relaxed priority shard set — so bucket advance and termination are
//!   the runtime's ordinary floor-race and quiescence machinery.

use rsched_graph::{CsrGraph, Weight, INF};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of a parallel Δ-stepping run.
#[derive(Clone, Debug)]
pub struct ParDeltaStats {
    /// Final distances (exact shortest paths).
    pub dist: Vec<Weight>,
    /// Vertex processings (including re-processings at improved distances).
    pub pops: u64,
    /// Worker wall-clock time.
    pub wall: Duration,
}

/// Atomic fetch-min on a distance slot; returns `true` if `nd` improved it.
#[inline]
fn relax_min(slot: &AtomicU64, nd: Weight) -> bool {
    let mut cur = slot.load(Ordering::Acquire);
    while nd < cur {
        match slot.compare_exchange_weak(cur, nd, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Frontiers smaller than this per thread are processed inline: forking a
/// thread scope costs more than relaxing a few hundred edges, and
/// bucket-synchronous SSSP on high-diameter graphs produces thousands of
/// tiny frontiers (the classic Δ-stepping hybridization).
const SEQ_FRONTIER_PER_THREAD: usize = 256;

/// Parallel Δ-stepping from `src` with bucket width `delta` on `threads`
/// worker threads.
///
/// # Examples
///
/// ```
/// use rsched_algos::delta_par::parallel_delta_stepping;
/// use rsched_graph::{gen::grid_road, dijkstra};
///
/// let g = grid_road(16, 16, 1);
/// let r = parallel_delta_stepping(&g, 0, 500, 4);
/// assert_eq!(r.dist, dijkstra(&g, 0).dist);
/// ```
pub fn parallel_delta_stepping(
    g: &CsrGraph,
    src: usize,
    delta: Weight,
    threads: usize,
) -> ParDeltaStats {
    assert!(delta >= 1 && threads >= 1);
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Release);
    // last_processed[v] = distance at which v was last processed, for
    // duplicate-entry filtering (INF = never).
    let last_processed: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    let mut buckets: Vec<Vec<usize>> = vec![vec![src]];
    let mut pops = 0u64;
    let start = Instant::now();
    let mut bi = 0usize;
    while bi < buckets.len() {
        let mut settled: Vec<usize> = Vec::new();
        // --- Light-edge iterations within the bucket.
        loop {
            let frontier = std::mem::take(&mut buckets[bi]);
            if frontier.is_empty() {
                break;
            }
            let workers = if frontier.len() < SEQ_FRONTIER_PER_THREAD * threads {
                1
            } else {
                threads
            };
            let light_pass = |chunk: &[usize]| {
                // (bucket, vertex) insertions, processed vertices, count.
                let mut pushes: Vec<(usize, usize)> = Vec::new();
                let mut processed: Vec<usize> = Vec::new();
                let mut count = 0u64;
                for &v in chunk {
                    let d = dist[v].load(Ordering::Acquire);
                    let vb = (d / delta) as usize;
                    if vb != bi {
                        // Stale entry: requeue if it belongs to a later
                        // bucket (earlier buckets already processed it).
                        if d != INF && vb > bi {
                            pushes.push((vb, v));
                        }
                        continue;
                    }
                    // Claim processing at distance d.
                    if last_processed[v].swap(d, Ordering::AcqRel) == d {
                        continue; // already processed at d
                    }
                    count += 1;
                    processed.push(v);
                    for (u, w) in g.neighbors(v) {
                        if w < delta && relax_min(&dist[u], d + w) {
                            pushes.push((((d + w) / delta) as usize, u));
                        }
                    }
                }
                (pushes, processed, count)
            };
            // (bucket pushes, processed vertices, processing count)
            type LightResult = (Vec<(usize, usize)>, Vec<usize>, u64);
            let results: Vec<LightResult> =
                rsched_runtime::map_chunks(workers, &frontier, light_pass);
            for (pushes, processed, count) in results {
                pops += count;
                settled.extend(processed);
                for (nb, v) in pushes {
                    if nb >= buckets.len() {
                        buckets.resize(nb + 1, Vec::new());
                    }
                    buckets[nb].push(v);
                }
            }
        }
        // --- Heavy edges of the settled set, one parallel pass.
        settled.sort_unstable();
        settled.dedup();
        if !settled.is_empty() {
            let heavy_pass = |chunk: &[usize]| {
                let mut pushes: Vec<(usize, usize)> = Vec::new();
                for &v in chunk {
                    let d = dist[v].load(Ordering::Acquire);
                    for (u, w) in g.neighbors(v) {
                        if w >= delta && relax_min(&dist[u], d + w) {
                            pushes.push((((d + w) / delta) as usize, u));
                        }
                    }
                }
                pushes
            };
            let workers = if settled.len() < SEQ_FRONTIER_PER_THREAD * threads {
                1
            } else {
                threads
            };
            let results: Vec<Vec<(usize, usize)>> =
                rsched_runtime::map_chunks(workers, &settled, heavy_pass);
            for pushes in results {
                for (nb, v) in pushes {
                    if nb >= buckets.len() {
                        buckets.resize(nb + 1, Vec::new());
                    }
                    buckets[nb].push(v);
                }
            }
        }
        bi += 1;
    }
    ParDeltaStats {
        dist: dist.into_iter().map(|d| d.into_inner()).collect(),
        pops,
        wall: start.elapsed(),
    }
}

/// Δ-stepping on the **bucketed relaxed-FIFO hybrid**
/// ([`BucketFifoQueue`]) instead of the bucket-synchronous coordinator:
/// vertices are queued at their full tentative distance; the queue
/// itself quantizes into Δ-wide buckets, drains them oldest-first (a
/// relaxed FIFO *of buckets*), and relaxes the order only *inside* the
/// current bucket (a relaxed priority shard set per bucket, with
/// per-bucket decrease-key merging). This is the paper's Theorem 6.1
/// correspondence between Δ-stepping and relaxed SSSP built as one
/// structure: priority displacement per pop is bounded by Δ plus the
/// outer FIFO slack, instead of the flat MultiQueue's unbounded
/// priority spread at rank `O(q log q)`. With `Δ = 1` every bucket is a
/// single distance value (Dijkstra order, FIFO-relaxed); with
/// `Δ ≥ max-path-weight` it is one big relaxed priority queue.
///
/// Unlike [`parallel_delta_stepping`] there is no barrier between
/// buckets: bucket advance is just the hybrid's floor racing past
/// drained buckets, and workers drain to global quiescence — exactly
/// the paper's asynchronous execution model, detected by the runtime's
/// ordinary termination machinery.
///
/// [`RuntimeConfig::delta`] (env `RSCHED_DELTA`) overrides `delta`;
/// [`RuntimeConfig::bucket_shards`] (env `RSCHED_BUCKET_SHARDS`) sets
/// the priority shards per bucket (default `2 × threads`).
///
/// # Examples
///
/// ```
/// use rsched_algos::delta_par::relaxed_delta_stepping;
/// use rsched_graph::{gen::grid_road, dijkstra};
///
/// let g = grid_road(16, 16, 1);
/// let r = relaxed_delta_stepping(&g, 0, 40, 4, 7);
/// assert_eq!(r.dist, dijkstra(&g, 0).dist);
/// ```
///
/// [`BucketFifoQueue`]: rsched_queues::BucketFifoQueue
/// [`RuntimeConfig::delta`]: rsched_runtime::RuntimeConfig
/// [`RuntimeConfig::bucket_shards`]: rsched_runtime::RuntimeConfig
pub fn relaxed_delta_stepping(
    g: &CsrGraph,
    src: usize,
    delta: Weight,
    threads: usize,
    seed: u64,
) -> ParDeltaStats {
    use rsched_queues::QueueBuilder;
    use rsched_runtime::{run, RuntimeConfig, TaskOutcome};

    assert!(delta >= 1 && threads >= 1);
    let cfg = RuntimeConfig {
        threads,
        seed,
        ..RuntimeConfig::default()
    };
    let delta = if cfg.delta >= 1 { cfg.delta } else { delta };
    // Default shards per bucket: 2× threads like the MultiQueue, but
    // capped — every touched bucket owns a full shard set and bucket
    // memory is not reclaimed mid-run (ROADMAP follow-up), so an
    // uncapped shards×buckets product can exhaust memory on
    // many-bucket graphs at high thread counts.
    let bucket_shards = if cfg.bucket_shards >= 1 {
        cfg.bucket_shards
    } else {
        (2 * threads).clamp(2, 16)
    };
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src].store(0, Ordering::Release);
    let queue = QueueBuilder::new(bucket_shards).delta(delta).bucket_fifo();
    let start = Instant::now();
    let stats = run(&queue, cfg, [(src, 0u64)], |w, v, queued| {
        let d = dist[v].load(Ordering::Acquire);
        if queued > d {
            // A smaller distance for `v` was queued (in a lower bucket
            // or merged into this one) after this entry; that copy does
            // the work.
            return TaskOutcome::Stale;
        }
        for (u, wt) in g.neighbors(v) {
            let nd = d + wt;
            if relax_min(&dist[u], nd) {
                w.spawn(u, nd);
            }
        }
        TaskOutcome::Executed
    });
    ParDeltaStats {
        dist: dist.into_iter().map(|d| d.into_inner()).collect(),
        pops: stats.total.pops,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_graph::dijkstra;
    use rsched_graph::gen::{bucket_chain_weights, grid_road, path_graph, power_law, random_gnm};

    #[test]
    fn relaxed_variant_matches_dijkstra_across_deltas() {
        let graphs = [
            random_gnm(600, 3000, 1..=100, 5),
            grid_road(20, 20, 2),
            path_graph(200, 9),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let want = dijkstra(g, 0).dist;
            let reachable = want.iter().filter(|&&d| d != INF).count() as u64;
            for delta in [1 as Weight, 37, 1_000_000] {
                for threads in [1usize, 4] {
                    let got = relaxed_delta_stepping(g, 0, delta, threads, 13);
                    assert_eq!(got.dist, want, "graph {i}, delta {delta}, {threads}t");
                    assert!(got.pops >= reachable);
                }
            }
        }
    }

    #[test]
    fn hybrid_matches_sequential_sssp_on_random_graphs() {
        // The PR 5 equivalence gate: the hybrid engine must produce
        // exact shortest-path distances on random graphs across bucket
        // widths, thread counts and graph seeds.
        for gseed in [1u64, 2, 3] {
            let g = random_gnm(500, 2_500, 1..=100, gseed);
            let want = dijkstra(&g, 0).dist;
            for delta in [5 as Weight, 64, 1_000] {
                for threads in [1usize, 3, 8] {
                    let got = relaxed_delta_stepping(&g, 0, delta, threads, gseed ^ 0xABCD);
                    assert_eq!(got.dist, want, "seed {gseed}, delta {delta}, {threads}t");
                }
            }
        }
    }

    #[test]
    fn matches_dijkstra_across_graphs_and_deltas() {
        let graphs = [
            random_gnm(600, 3000, 1..=100, 1),
            grid_road(20, 20, 2),
            power_law(600, 4, 1..=100, 3),
            path_graph(300, 9),
            bucket_chain_weights(30, 5, 10..=20, 4),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let want = dijkstra(g, 0).dist;
            for delta in [1 as Weight, 37, 500, 1_000_000] {
                for threads in [1usize, 4] {
                    let got = parallel_delta_stepping(g, 0, delta, threads);
                    assert_eq!(
                        got.dist, want,
                        "graph {i}, delta {delta}, threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn pops_at_least_reachable() {
        let g = grid_road(16, 16, 7);
        let r = parallel_delta_stepping(&g, 0, 100, 4);
        let reachable = r.dist.iter().filter(|&&d| d != INF).count() as u64;
        assert!(r.pops >= reachable);
    }

    #[test]
    fn huge_delta_behaves_like_bellman_ford_rounds() {
        // delta > d_max puts everything in bucket 0; still exact.
        let g = random_gnm(300, 1500, 1..=10, 5);
        let r = parallel_delta_stepping(&g, 0, Weight::MAX / 2, 4);
        assert_eq!(r.dist, dijkstra(&g, 0).dist);
    }

    #[test]
    fn repeated_runs_are_exact_under_contention() {
        let g = grid_road(24, 24, 9);
        let want = dijkstra(&g, 0).dist;
        for threads in [2usize, 8] {
            for _ in 0..3 {
                assert_eq!(parallel_delta_stepping(&g, 0, 700, threads).dist, want);
            }
        }
    }
}
