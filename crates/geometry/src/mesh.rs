//! Triangle-arena mesh with neighbour links.
//!
//! Triangles are stored in an append-only arena ([`TriMesh`]); Bowyer–Watson
//! insertion kills cavity triangles (marking them dead) and appends the
//! retriangulated fan, so triangle ids are stable and dead triangles keep
//! their vertex data — useful for debugging adversarial insertion orders.

use crate::point::Point;
use crate::predicates::{incircle_det, orient2d_det};

/// Index of a triangle in the arena.
pub type TriId = u32;

/// Sentinel for "no neighbour" (only the outer side of the super-triangle).
pub const NO_TRI: TriId = u32::MAX;

/// A triangle: counter-clockwise vertex ids and the three neighbours, where
/// `nbr[i]` is the triangle across the edge *opposite* vertex `v[i]`
/// (i.e. the edge `(v[i+1], v[i+2])`).
#[derive(Clone, Copy, Debug)]
pub struct Triangle {
    pub v: [u32; 3],
    pub nbr: [TriId; 3],
    pub alive: bool,
}

impl Triangle {
    /// Index (0..3) of vertex `p` within this triangle.
    #[inline]
    pub fn index_of(&self, p: u32) -> Option<usize> {
        self.v.iter().position(|&x| x == p)
    }

    /// Index (0..3) of neighbour `t` within this triangle.
    #[inline]
    pub fn nbr_index_of(&self, t: TriId) -> Option<usize> {
        self.nbr.iter().position(|&x| x == t)
    }

    /// The edge opposite vertex slot `i`, as `(v[i+1], v[i+2])`.
    #[inline]
    pub fn opposite_edge(&self, i: usize) -> (u32, u32) {
        (self.v[(i + 1) % 3], self.v[(i + 2) % 3])
    }
}

/// The mesh: a point store (data points followed by the three super-triangle
/// vertices) plus the triangle arena.
#[derive(Clone, Debug)]
pub struct TriMesh {
    points: Vec<Point>,
    tris: Vec<Triangle>,
    n_real: usize,
    alive: usize,
}

impl TriMesh {
    /// Build a mesh over `points` (data points; the three super-triangle
    /// vertices are appended internally) containing the single
    /// super-triangle.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate magnitude exceeds `2^23` (needed so the
    /// super-triangle vertices stay within the exact-arithmetic bound) or if
    /// `points` contains duplicates.
    pub fn new(points: Vec<Point>) -> Self {
        let mut s: i64 = 1;
        for p in &points {
            assert!(
                p.x.abs() <= (1 << 23) && p.y.abs() <= (1 << 23),
                "data coordinates must satisfy |c| <= 2^23"
            );
            s = s.max(p.x.abs()).max(p.y.abs());
        }
        {
            let mut sorted = points.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                points.len(),
                "duplicate points are not allowed"
            );
        }
        let n_real = points.len();
        let mut pts = points;
        // Super-triangle comfortably containing [-s, s]²; |8s| ≤ 2^26.
        pts.push(Point::new(-8 * s, -8 * s));
        pts.push(Point::new(8 * s, -8 * s));
        pts.push(Point::new(0, 8 * s));
        let tris = vec![Triangle {
            v: [n_real as u32, n_real as u32 + 1, n_real as u32 + 2],
            nbr: [NO_TRI; 3],
            alive: true,
        }];
        TriMesh {
            points: pts,
            tris,
            n_real,
            alive: 1,
        }
    }

    /// Number of data points (excluding the super-triangle vertices).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.n_real
    }

    /// `true` if point id `p` is a super-triangle vertex.
    #[inline]
    pub fn is_super(&self, p: u32) -> bool {
        (p as usize) >= self.n_real
    }

    /// Coordinates of point id `p` (data or super vertex).
    #[inline]
    pub fn point(&self, p: u32) -> Point {
        self.points[p as usize]
    }

    /// The triangle record for `t`.
    #[inline]
    pub fn tri(&self, t: TriId) -> &Triangle {
        &self.tris[t as usize]
    }

    /// Number of live triangles.
    #[inline]
    pub fn num_alive(&self) -> usize {
        self.alive
    }

    /// Total arena size (live + dead triangles).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.tris.len()
    }

    /// Iterate over ids of live triangles.
    pub fn alive_tris(&self) -> impl Iterator<Item = TriId> + '_ {
        self.tris
            .iter()
            .enumerate()
            .filter(|(_, t)| t.alive)
            .map(|(i, _)| i as TriId)
    }

    /// `true` iff data point `p` lies strictly inside the circumcircle of
    /// live triangle `t`.
    #[inline]
    pub fn in_circumcircle(&self, t: TriId, p: u32) -> bool {
        let tri = &self.tris[t as usize];
        incircle_det(
            self.point(tri.v[0]),
            self.point(tri.v[1]),
            self.point(tri.v[2]),
            self.point(p),
        ) > 0
    }

    /// `true` iff point `p` lies inside or on the boundary of triangle `t`.
    #[inline]
    pub fn contains_point(&self, t: TriId, p: u32) -> bool {
        let tri = &self.tris[t as usize];
        let q = self.point(p);
        for i in 0..3 {
            let (a, b) = (tri.v[i], tri.v[(i + 1) % 3]);
            if orient2d_det(self.point(a), self.point(b), q) < 0 {
                return false;
            }
        }
        true
    }

    /// Kill triangle `t` (Bowyer–Watson cavity removal).
    pub(crate) fn kill(&mut self, t: TriId) {
        let tri = &mut self.tris[t as usize];
        debug_assert!(tri.alive);
        tri.alive = false;
        self.alive -= 1;
    }

    /// Append a new live triangle, returning its id. The caller is
    /// responsible for wiring neighbours consistently.
    pub(crate) fn push_tri(&mut self, v: [u32; 3], nbr: [TriId; 3]) -> TriId {
        debug_assert!(
            orient2d_det(self.point(v[0]), self.point(v[1]), self.point(v[2])) > 0,
            "new triangle must be counter-clockwise"
        );
        self.tris.push(Triangle {
            v,
            nbr,
            alive: true,
        });
        self.alive += 1;
        (self.tris.len() - 1) as TriId
    }

    pub(crate) fn set_nbr(&mut self, t: TriId, slot: usize, to: TriId) {
        self.tris[t as usize].nbr[slot] = to;
    }

    /// Iterate over the undirected edges of the live mesh, each reported
    /// once as `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(3 * self.alive / 2 + 3);
        for t in self.alive_tris() {
            let tri = self.tri(t);
            for s in 0..3 {
                let (a, b) = tri.opposite_edge(s);
                // Interior edges appear twice (once per direction): keep the
                // a < b occurrence. Boundary edges appear only once, in CCW
                // direction, which may have a > b: normalize and keep.
                if a < b || tri.nbr[s] == NO_TRI {
                    out.push((a.min(b), a.max(b)));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Degree (number of incident live triangles) of every vertex.
    pub fn vertex_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.points.len()];
        for t in self.alive_tris() {
            for &v in &self.tri(t).v {
                deg[v as usize] += 1;
            }
        }
        deg
    }

    /// Quality summary over live triangles whose vertices are all data
    /// points: `(min_angle_deg, mean_min_angle_deg, count)`. The Delaunay
    /// triangulation maximizes the minimum angle among all triangulations,
    /// so regressions here flag structural bugs even when the circumcircle
    /// checks pass.
    pub fn angle_stats(&self) -> Option<(f64, f64, usize)> {
        let mut global_min = f64::INFINITY;
        let mut sum_min = 0.0;
        let mut count = 0usize;
        for t in self.alive_tris() {
            let tri = self.tri(t);
            if tri.v.iter().any(|&v| self.is_super(v)) {
                continue;
            }
            let p: Vec<Point> = tri.v.iter().map(|&v| self.point(v)).collect();
            let mut min_angle = f64::INFINITY;
            for i in 0..3 {
                let a = p[i];
                let b = p[(i + 1) % 3];
                let c = p[(i + 2) % 3];
                let abx = (b.x - a.x) as f64;
                let aby = (b.y - a.y) as f64;
                let acx = (c.x - a.x) as f64;
                let acy = (c.y - a.y) as f64;
                let dot = abx * acx + aby * acy;
                let cross = abx * acy - aby * acx;
                let angle = cross.atan2(dot).abs().to_degrees();
                min_angle = min_angle.min(angle);
            }
            global_min = global_min.min(min_angle);
            sum_min += min_angle;
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some((global_min, sum_min / count as f64, count))
        }
    }

    /// Structural invariants: every live triangle is CCW; neighbour links
    /// are symmetric and live; the shared edge of two neighbours is the same
    /// vertex pair.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (i, tri) in self.tris.iter().enumerate() {
            if !tri.alive {
                continue;
            }
            let t = i as TriId;
            assert!(
                orient2d_det(
                    self.point(tri.v[0]),
                    self.point(tri.v[1]),
                    self.point(tri.v[2])
                ) > 0,
                "triangle {t} is not CCW"
            );
            for s in 0..3 {
                let n = tri.nbr[s];
                if n == NO_TRI {
                    continue;
                }
                let ntri = &self.tris[n as usize];
                assert!(ntri.alive, "triangle {t} points at dead neighbour {n}");
                let back = ntri
                    .nbr_index_of(t)
                    .unwrap_or_else(|| panic!("neighbour {n} does not point back at {t}"));
                // Shared edge must consist of the same two vertices, in
                // opposite directions.
                let (a, b) = tri.opposite_edge(s);
                let (c, d) = ntri.opposite_edge(back);
                assert_eq!((a, b), (d, c), "edge mismatch between {t} and {n}");
            }
        }
        assert_eq!(self.alive, self.alive_tris().count());
    }

    /// The Delaunay property over the *inserted* subset of points: no live
    /// triangle's circumcircle strictly contains any inserted point.
    /// `O(T·n)` — test/diagnostic use only.
    #[doc(hidden)]
    pub fn check_delaunay(&self, inserted: &[bool]) {
        for t in self.alive_tris() {
            let tri = self.tri(t);
            for (p, &ins) in inserted.iter().enumerate() {
                let p = p as u32;
                if !ins || tri.v.contains(&p) {
                    continue;
                }
                assert!(
                    !self.in_circumcircle(t, p),
                    "Delaunay violated: point {p} inside circumcircle of triangle {t} {:?}",
                    tri.v
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mesh_is_one_super_triangle() {
        let pts = vec![Point::new(0, 0), Point::new(10, 0), Point::new(0, 10)];
        let m = TriMesh::new(pts);
        assert_eq!(m.num_points(), 3);
        assert_eq!(m.num_alive(), 1);
        assert!(m.is_super(3) && m.is_super(5));
        assert!(!m.is_super(2));
        m.check_invariants();
        // Every data point is inside the super triangle.
        for p in 0..3 {
            assert!(m.contains_point(0, p));
        }
    }

    #[test]
    fn super_triangle_contains_extreme_points() {
        let pts = vec![
            Point::new(-(1 << 23), -(1 << 23)),
            Point::new((1 << 23) - 1, (1 << 23) - 1),
            Point::new(0, 1 << 22),
        ];
        let m = TriMesh::new(pts);
        for p in 0..3 {
            assert!(m.contains_point(0, p), "point {p} outside super triangle");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate points")]
    fn duplicates_rejected() {
        TriMesh::new(vec![Point::new(1, 1), Point::new(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "2^23")]
    fn oversized_coordinates_rejected() {
        TriMesh::new(vec![Point::new(1 << 24, 0)]);
    }
}
