//! Integer-grid points and deterministic random point clouds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Largest coordinate magnitude for which the `i128` predicate arithmetic in
/// [`crate::predicates`] provably cannot overflow (see the bound derivation
/// there). The super-triangle vertices used by [`crate::triangulate`] must
/// also respect this bound.
pub const MAX_COORD: i64 = 1 << 26;

/// A point on the integer grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    pub x: i64,
    pub y: i64,
}

impl Point {
    /// Construct a point, asserting the coordinate bound that keeps the
    /// exact predicates overflow-free.
    #[inline]
    pub fn new(x: i64, y: i64) -> Self {
        debug_assert!(
            x.abs() <= MAX_COORD && y.abs() <= MAX_COORD,
            "coordinates must satisfy |c| <= MAX_COORD for exact predicates"
        );
        Self { x, y }
    }

    /// Squared Euclidean distance to `other` (exact in i128).
    #[inline]
    pub fn dist2(&self, other: &Point) -> i128 {
        let dx = (self.x - other.x) as i128;
        let dy = (self.y - other.y) as i128;
        dx * dx + dy * dy
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// `n` *distinct* uniform random points on `[0, extent)²`, deterministic in
/// the seed. Distinctness matters: the incremental triangulation rejects
/// duplicate points, and the paper's random-order analysis assumes `n`
/// distinct tasks.
///
/// # Panics
///
/// Panics if `extent² < 2n` (not enough room for distinct points) or
/// `extent > MAX_COORD`.
///
/// # Examples
///
/// ```
/// use rsched_geometry::random_points;
///
/// let pts = random_points(100, 1 << 20, 42);
/// assert_eq!(pts.len(), 100);
/// let dedup: std::collections::HashSet<_> = pts.iter().collect();
/// assert_eq!(dedup.len(), 100);
/// ```
pub fn random_points(n: usize, extent: i64, seed: u64) -> Vec<Point> {
    assert!(extent > 0 && extent <= MAX_COORD);
    assert!(
        (extent as u128) * (extent as u128) >= 2 * n as u128,
        "extent too small for {n} distinct points"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let p = Point::new(rng.gen_range(0..extent), rng.gen_range(0..extent));
        if seen.insert(p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_points_deterministic_and_distinct() {
        let a = random_points(500, 1 << 16, 3);
        let b = random_points(500, 1 << 16, 3);
        assert_eq!(a, b);
        let set: HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 500);
        for p in &a {
            assert!(p.x >= 0 && p.x < (1 << 16));
            assert!(p.y >= 0 && p.y < (1 << 16));
        }
    }

    #[test]
    fn dist2_exact() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.dist2(&b), 25);
        let c = Point::new(MAX_COORD, MAX_COORD);
        // No overflow at the extreme.
        assert_eq!(a.dist2(&c), 2 * (MAX_COORD as i128) * (MAX_COORD as i128));
    }

    #[test]
    #[should_panic(expected = "extent too small")]
    fn tiny_extent_rejected() {
        random_points(100, 10, 0);
    }
}
