//! # rsched-geometry — 2-D computational-geometry substrate
//!
//! Everything the Delaunay-triangulation experiments of the SPAA 2019 paper
//! need, built from scratch:
//!
//! * [`point`] — integer-grid points and deterministic random point clouds;
//! * [`predicates`] — **exact** `orient2d` / `incircle` predicates over
//!   integer coordinates using `i128` arithmetic (no epsilon tuning, no
//!   floating-point filters — determinant signs are computed exactly);
//! * [`mesh`] — a triangle-arena mesh with neighbour links and invariant
//!   checkers;
//! * [`triangulate`] — incremental Bowyer–Watson insertion with
//!   Clarkson–Shor conflict lists. The conflict lists double as the paper's
//!   *dependency oracle*: a pending point `u` stored in a triangle of the
//!   cavity of `v` has a cavity overlapping `v`'s (its containing triangle
//!   lies in both), which is the "encroaching regions overlap" dependency of
//!   Section 3.
//!
//! ## Exactness model
//!
//! Points live on the integer grid `[0, 2^20)²` (configurable up to
//! `MAX_COORD`); predicates are evaluated in `i128`, which provably cannot
//! overflow for coordinates below [`point::MAX_COORD`]. The triangulation is
//! bootstrapped from a huge super-triangle whose vertices are ordinary
//! (exactly-represented) grid points far outside the data extent; the
//! structure maintained is therefore the exact Delaunay triangulation of the
//! *augmented* point set (data points plus the three super-triangle
//! vertices). This sidesteps symbolic "ghost vertex" case analysis while
//! keeping every insertion order — including the adversarial orders a
//! relaxed scheduler produces — well-defined and exact. See DESIGN.md.

pub mod mesh;
pub mod point;
pub mod predicates;
pub mod triangulate;

pub use mesh::{TriId, TriMesh, Triangle};
pub use point::{random_points, Point, MAX_COORD};
pub use predicates::{incircle, orient2d, Orientation};
pub use triangulate::{delaunay, DelaunayState};
