//! Exact geometric predicates over integer coordinates.
//!
//! Robustness strategy: instead of floating-point filters with exact
//! fallbacks (Shewchuk's adaptive predicates), we restrict coordinates to
//! the integer grid `|c| ≤ 2^26` and evaluate the determinants in `i128`,
//! where they provably cannot overflow:
//!
//! * `orient2d` is a 2×2 determinant of differences: terms are bounded by
//!   `2·2^26 · 2·2^26 = 2^54`, far below `i128::MAX`.
//! * `incircle` is evaluated as the 3×3 determinant of rows
//!   `(ax−dx, ay−dy, (ax−dx)² + (ay−dy)²)`: differences are `≤ 2^27`,
//!   the lifted column `≤ 2^55`, each of the 6 expansion terms
//!   `≤ 2^27 · 2^27 · 2^55 = 2^109`, and their sum `< 2^112 < 2^127`.
//!
//! Every sign decision is therefore *exact* — the mesh layer never has to
//! reason about epsilon slack, which is what makes the triangulation safe
//! under the adversarial insertion orders a relaxed scheduler can produce.

use crate::point::Point;

/// Sign of an exact determinant computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise / strictly inside.
    Positive,
    /// Collinear / exactly on the circle.
    Zero,
    /// Clockwise / strictly outside.
    Negative,
}

impl Orientation {
    #[inline]
    fn of(v: i128) -> Self {
        match v.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::Positive,
            std::cmp::Ordering::Equal => Orientation::Zero,
            std::cmp::Ordering::Less => Orientation::Negative,
        }
    }
}

/// Orientation of the triple `(a, b, c)`:
/// [`Orientation::Positive`] if `c` lies strictly to the left of the
/// directed line `a → b` (the triangle `a, b, c` is counter-clockwise).
///
/// # Examples
///
/// ```
/// use rsched_geometry::{orient2d, Orientation, Point};
///
/// let a = Point::new(0, 0);
/// let b = Point::new(4, 0);
/// assert_eq!(orient2d(a, b, Point::new(0, 3)), Orientation::Positive);
/// assert_eq!(orient2d(a, b, Point::new(2, 0)), Orientation::Zero);
/// assert_eq!(orient2d(a, b, Point::new(0, -3)), Orientation::Negative);
/// ```
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    Orientation::of(orient2d_det(a, b, c))
}

/// The raw `orient2d` determinant `(b−a) × (c−a)`; twice the signed area of
/// the triangle.
#[inline]
pub fn orient2d_det(a: Point, b: Point, c: Point) -> i128 {
    let abx = (b.x - a.x) as i128;
    let aby = (b.y - a.y) as i128;
    let acx = (c.x - a.x) as i128;
    let acy = (c.y - a.y) as i128;
    abx * acy - aby * acx
}

/// In-circle test: for a **counter-clockwise** triangle `(a, b, c)`,
/// [`Orientation::Positive`] iff `d` lies strictly inside the circumcircle.
///
/// # Panics
///
/// Debug-asserts that `(a, b, c)` is counter-clockwise; for a clockwise
/// triangle the sign would be flipped.
///
/// # Examples
///
/// ```
/// use rsched_geometry::{incircle, Orientation, Point};
///
/// // Unit-ish square corners; circumcircle of (0,0),(4,0),(4,4) passes
/// // through (0,4) and contains (2,2).
/// let a = Point::new(0, 0);
/// let b = Point::new(4, 0);
/// let c = Point::new(4, 4);
/// assert_eq!(incircle(a, b, c, Point::new(2, 2)), Orientation::Positive);
/// assert_eq!(incircle(a, b, c, Point::new(0, 4)), Orientation::Zero);
/// assert_eq!(incircle(a, b, c, Point::new(5, 0)), Orientation::Negative);
/// ```
#[inline]
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> Orientation {
    debug_assert!(
        orient2d_det(a, b, c) > 0,
        "incircle requires a counter-clockwise triangle"
    );
    Orientation::of(incircle_det(a, b, c, d))
}

/// The raw in-circle determinant (positive = inside, for CCW `(a,b,c)`).
pub fn incircle_det(a: Point, b: Point, c: Point, d: Point) -> i128 {
    let adx = (a.x - d.x) as i128;
    let ady = (a.y - d.y) as i128;
    let bdx = (b.x - d.x) as i128;
    let bdy = (b.y - d.y) as i128;
    let cdx = (c.x - d.x) as i128;
    let cdy = (c.y - d.y) as i128;
    let ad2 = adx * adx + ady * ady;
    let bd2 = bdx * bdx + bdy * bdy;
    let cd2 = cdx * cdx + cdy * cdy;
    adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) + ad2 * (bdx * cdy - cdx * bdy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::MAX_COORD;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn orientation_basics() {
        let a = Point::new(0, 0);
        let b = Point::new(10, 0);
        assert_eq!(orient2d(a, b, Point::new(5, 1)), Orientation::Positive);
        assert_eq!(orient2d(a, b, Point::new(5, -1)), Orientation::Negative);
        assert_eq!(orient2d(a, b, Point::new(100, 0)), Orientation::Zero);
        // Antisymmetry.
        assert_eq!(orient2d(b, a, Point::new(5, 1)), Orientation::Negative);
    }

    #[test]
    fn orientation_no_overflow_at_extremes() {
        let a = Point::new(-MAX_COORD, -MAX_COORD);
        let b = Point::new(MAX_COORD, -MAX_COORD);
        let c = Point::new(0, MAX_COORD);
        assert_eq!(orient2d(a, b, c), Orientation::Positive);
        // Near-collinear at full magnitude: differs by one unit.
        let d = Point::new(0, -MAX_COORD + 1);
        assert_eq!(orient2d(a, b, d), Orientation::Positive);
        let e = Point::new(0, -MAX_COORD);
        assert_eq!(orient2d(a, b, e), Orientation::Zero);
    }

    #[test]
    fn incircle_symmetry_under_rotation() {
        // incircle must be invariant under cyclic rotation of the CCW triangle.
        let a = Point::new(0, 0);
        let b = Point::new(8, 1);
        let c = Point::new(3, 9);
        let probes = [
            Point::new(4, 3),
            Point::new(100, 100),
            Point::new(-5, 4),
            Point::new(0, 1),
        ];
        for d in probes {
            let r1 = incircle_det(a, b, c, d).signum();
            let r2 = incircle_det(b, c, a, d).signum();
            let r3 = incircle_det(c, a, b, d).signum();
            assert_eq!(r1, r2);
            assert_eq!(r2, r3);
        }
    }

    #[test]
    fn incircle_agrees_with_distance_to_circumcenter() {
        // For random CCW triangles, compare against the rational circumcenter
        // computation done in exact arithmetic.
        let mut rng = SmallRng::seed_from_u64(77);
        let mut tested = 0;
        while tested < 500 {
            let p = |rng: &mut SmallRng| {
                Point::new(rng.gen_range(-1000..1000), rng.gen_range(-1000..1000))
            };
            let (a, b, c, d) = (p(&mut rng), p(&mut rng), p(&mut rng), p(&mut rng));
            if orient2d_det(a, b, c) <= 0 {
                continue;
            }
            tested += 1;
            // Circumcenter O satisfies |O-a|² = |O-b|² = |O-c|².
            // Solve 2(b-a)·O = |b|²-|a|², 2(c-a)·O = |c|²-|a|² in rationals:
            // O = (num_x / den, num_y / den) with den = 2 * orient2d_det(a,b,c).
            let ax = a.x as i128;
            let ay = a.y as i128;
            let bx = b.x as i128;
            let by = b.y as i128;
            let cx = c.x as i128;
            let cy = c.y as i128;
            let a2 = ax * ax + ay * ay;
            let b2 = bx * bx + by * by;
            let c2 = cx * cx + cy * cy;
            let den = 2 * orient2d_det(a, b, c);
            let nx = (b2 - a2) * (cy - ay) - (c2 - a2) * (by - ay);
            let ny = (c2 - a2) * (bx - ax) - (b2 - a2) * (cx - ax);
            // d inside circumcircle iff |d*den - n|² < |a*den - n|² (all exact).
            let dist2 = |px: i128, py: i128| {
                let ex = px * den - nx;
                let ey = py * den - ny;
                ex * ex + ey * ey
            };
            let rd = dist2(d.x as i128, d.y as i128);
            let ra = dist2(ax, ay);
            let expect = match rd.cmp(&ra) {
                std::cmp::Ordering::Less => Orientation::Positive,
                std::cmp::Ordering::Equal => Orientation::Zero,
                std::cmp::Ordering::Greater => Orientation::Negative,
            };
            assert_eq!(
                incircle(a, b, c, d),
                expect,
                "a={a:?} b={b:?} c={c:?} d={d:?}"
            );
        }
    }

    #[test]
    fn incircle_cocircular_is_zero() {
        // Four points of an axis-aligned square are cocircular.
        let a = Point::new(0, 0);
        let b = Point::new(6, 0);
        let c = Point::new(6, 6);
        let d = Point::new(0, 6);
        assert_eq!(incircle(a, b, c, d), Orientation::Zero);
    }

    #[test]
    fn incircle_vertex_is_on_circle() {
        let a = Point::new(0, 0);
        let b = Point::new(7, 2);
        let c = Point::new(1, 8);
        for v in [a, b, c] {
            assert_eq!(incircle(a, b, c, v), Orientation::Zero);
        }
    }
}
