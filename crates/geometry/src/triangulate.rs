//! Incremental Bowyer–Watson Delaunay triangulation with Clarkson–Shor
//! conflict lists.
//!
//! [`DelaunayState`] is the *algorithm state* of the paper's Section 3
//! incremental-algorithm model: each task is "insert point `p`", the shared
//! state is the current mesh, and the conflict lists provide both O(1)
//! point location and the dependency oracle:
//!
//! * every **pending** (not yet inserted) point is stored in the conflict
//!   list of the live triangle containing it;
//! * a pending point `u` located in a triangle of the cavity of `v` has
//!   `cavity(u) ∩ cavity(v) ≠ ∅` (its containing triangle's circumcircle
//!   contains `u`, so that triangle is in `u`'s cavity too) — this is the
//!   operational form of the paper's "encroaching regions overlap"
//!   dependency between insertion tasks.
//!
//! The expected O(1/i)-style conflict probabilities that Theorem 3.3 relies
//! on (properties (1) and (2) of Section 3.1, proved in Blelloch et al.,
//! SPAA 2016) are properties of exactly this conflict structure under random
//! insertion orders.

use crate::mesh::{TriId, TriMesh, NO_TRI};
use crate::point::Point;
use std::collections::HashMap;

/// Incremental Delaunay triangulation state supporting arbitrary insertion
/// orders, cavity queries and the pending-conflict dependency oracle.
///
/// # Examples
///
/// ```
/// use rsched_geometry::{random_points, DelaunayState};
///
/// let pts = random_points(50, 1 << 12, 1);
/// let mut st = DelaunayState::new(pts);
/// // Insert in an arbitrary (here: reverse) order.
/// for p in (0..50u32).rev() {
///     st.insert(p);
/// }
/// assert_eq!(st.num_inserted(), 50);
/// // 2n + 1 live triangles for n points inside a super-triangle.
/// assert_eq!(st.mesh().num_alive(), 2 * 50 + 1);
/// ```
#[derive(Clone, Debug)]
pub struct DelaunayState {
    mesh: TriMesh,
    /// Pending point → live triangle containing it.
    pt_tri: Vec<TriId>,
    /// Live triangle → pending points located in it (parallel to the arena).
    conflict: Vec<Vec<u32>>,
    inserted: Vec<bool>,
    n_inserted: usize,
    /// Total number of point-relocation steps performed (the dominant cost
    /// of randomized incremental construction; exposed for experiments).
    relocations: u64,
}

impl DelaunayState {
    /// Start a triangulation of `points`; all points begin *pending*.
    pub fn new(points: Vec<Point>) -> Self {
        let n = points.len();
        let mesh = TriMesh::new(points);
        let conflict = vec![(0..n as u32).collect()];
        DelaunayState {
            mesh,
            pt_tri: vec![0; n],
            conflict,
            inserted: vec![false; n],
            n_inserted: 0,
            relocations: 0,
        }
    }

    /// The current mesh.
    pub fn mesh(&self) -> &TriMesh {
        &self.mesh
    }

    /// Number of points inserted so far.
    pub fn num_inserted(&self) -> usize {
        self.n_inserted
    }

    /// Total points (pending + inserted).
    pub fn num_points(&self) -> usize {
        self.inserted.len()
    }

    /// `true` if point `p` has been inserted.
    pub fn is_inserted(&self, p: u32) -> bool {
        self.inserted[p as usize]
    }

    /// Inserted flags, indexed by point id (for the Delaunay checker).
    pub fn inserted_flags(&self) -> &[bool] {
        &self.inserted
    }

    /// Point-relocation work counter.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// The cavity of pending point `p`: all live triangles whose
    /// circumcircle strictly contains `p` (connected, containing `p`'s
    /// triangle). This is the region retriangulated when `p` is inserted —
    /// the paper's "encroaching region".
    pub fn cavity(&self, p: u32) -> Vec<TriId> {
        assert!(!self.inserted[p as usize], "cavity of an inserted point");
        let t0 = self.pt_tri[p as usize];
        debug_assert!(self.mesh.tri(t0).alive);
        let mut cavity = vec![t0];
        let mut seen: HashMap<TriId, ()> = HashMap::new();
        seen.insert(t0, ());
        let mut stack = vec![t0];
        while let Some(t) = stack.pop() {
            for &n in &self.mesh.tri(t).nbr {
                if n == NO_TRI || seen.contains_key(&n) {
                    continue;
                }
                seen.insert(n, ());
                if self.mesh.in_circumcircle(n, p) {
                    cavity.push(n);
                    stack.push(n);
                }
            }
        }
        cavity
    }

    /// Pending points (other than `p` itself) located in the cavity of `p` —
    /// the tasks whose encroaching regions overlap `p`'s. The scheduler
    /// executor compares their labels against `p`'s to decide whether `p`
    /// may be processed (Algorithm 2's `CheckDependencies`).
    pub fn pending_in_cavity(&self, p: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for t in self.cavity(p) {
            for &q in &self.conflict[t as usize] {
                if q != p {
                    debug_assert!(!self.inserted[q as usize]);
                    out.push(q);
                }
            }
        }
        out
    }

    /// Size of the cavity of `p` (number of triangles), for experiments.
    pub fn cavity_size(&self, p: u32) -> usize {
        self.cavity(p).len()
    }

    /// Insert pending point `p`: carve its cavity and retriangulate the
    /// star fan, relocating the cavity's pending points into the fan.
    pub fn insert(&mut self, p: u32) {
        assert!(!self.inserted[p as usize], "point {p} was already inserted");
        let cavity = self.cavity(p);
        // --- Collect directed boundary edges (a, b) with outer neighbours.
        // For a CCW triangle, the interior (and hence `p`) is to the left of
        // each directed edge (v[i+1], v[i+2]); boundary edges therefore wind
        // counter-clockwise around the cavity.
        let in_cavity: HashMap<TriId, ()> = cavity.iter().map(|&t| (t, ())).collect();
        let mut boundary: Vec<(u32, u32, TriId)> = Vec::with_capacity(cavity.len() + 2);
        for &t in &cavity {
            let tri = self.mesh.tri(t);
            for s in 0..3 {
                let n = tri.nbr[s];
                if n == NO_TRI || !in_cavity.contains_key(&n) {
                    let (a, b) = tri.opposite_edge(s);
                    boundary.push((a, b, n));
                }
            }
        }
        debug_assert!(boundary.len() >= 3);
        // --- Gather the pending points to relocate, then kill the cavity.
        let mut to_relocate: Vec<u32> = Vec::new();
        for &t in &cavity {
            for q in std::mem::take(&mut self.conflict[t as usize]) {
                if q != p {
                    to_relocate.push(q);
                }
            }
            self.mesh.kill(t);
        }
        // --- Build the star fan: one new triangle (p, a, b) per boundary
        // edge; link the outer neighbour immediately and the intra-fan
        // neighbours via the edge-endpoint maps.
        let mut by_start: HashMap<u32, TriId> = HashMap::with_capacity(boundary.len());
        let mut by_end: HashMap<u32, TriId> = HashMap::with_capacity(boundary.len());
        let mut new_tris: Vec<TriId> = Vec::with_capacity(boundary.len());
        for &(a, b, outer) in &boundary {
            // Vertices [p, a, b]: CCW because p is left of (a -> b).
            // nbr[0] (opposite p, edge (a,b)) = outer.
            let t = self.mesh.push_tri([p, a, b], [outer, NO_TRI, NO_TRI]);
            self.conflict.push(Vec::new());
            if outer != NO_TRI {
                // The outer triangle still points at the dead cavity
                // triangle across this edge; redirect it to the fan.
                self.rewire_outer(outer, a, b, t);
            }
            by_start.insert(a, t);
            by_end.insert(b, t);
            new_tris.push(t);
        }
        // Intra-fan links: triangle (p, a, b) shares edge (p, b) with the
        // fan triangle starting at b, and edge (p, a) with the one ending
        // at a.
        for (&(a, b, _), &t) in boundary.iter().zip(&new_tris) {
            let right = by_start[&b]; // shares edge (p, b), opposite vertex a = slot 1
            let left = by_end[&a]; // shares edge (p, a), opposite vertex b = slot 2
            self.mesh.set_nbr(t, 1, right);
            self.mesh.set_nbr(t, 2, left);
        }
        // --- Relocate pending points into the fan.
        'points: for q in to_relocate {
            self.relocations += 1;
            for &t in &new_tris {
                if self.mesh.contains_point(t, q) {
                    self.pt_tri[q as usize] = t;
                    self.conflict[t as usize].push(q);
                    continue 'points;
                }
            }
            unreachable!("pending point {q} escaped the cavity of {p}");
        }
        self.inserted[p as usize] = true;
        self.n_inserted += 1;
    }

    /// Redirect the neighbour slot of `outer` across the shared edge
    /// `(a, b)` (which `outer` sees as the directed edge `(b, a)`) to point
    /// at the fan triangle `t`.
    fn rewire_outer(&mut self, outer: TriId, a: u32, b: u32, t: TriId) {
        let tri = self.mesh.tri(outer);
        for s in 0..3 {
            if tri.opposite_edge(s) == (b, a) {
                debug_assert!(
                    tri.nbr[s] == NO_TRI || !self.mesh.tri(tri.nbr[s]).alive,
                    "outer link across the cavity boundary should be dead"
                );
                self.mesh.set_nbr(outer, s, t);
                return;
            }
        }
        panic!("outer triangle {outer} does not border edge ({a},{b})");
    }

    /// Full-state invariants (test/diagnostic): mesh invariants, plus every
    /// pending point is in exactly one live triangle's conflict list, which
    /// contains it geometrically.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.mesh.check_invariants();
        let mut seen = vec![false; self.inserted.len()];
        for t in self.mesh.alive_tris() {
            for &q in &self.conflict[t as usize] {
                assert!(
                    !self.inserted[q as usize],
                    "inserted point in conflict list"
                );
                assert!(!seen[q as usize], "point {q} in two conflict lists");
                seen[q as usize] = true;
                assert_eq!(self.pt_tri[q as usize], t, "pt_tri stale for {q}");
                assert!(
                    self.mesh.contains_point(t, q),
                    "point {q} not inside its conflict triangle {t}"
                );
            }
        }
        for (q, (&ins, &s)) in self.inserted.iter().zip(&seen).enumerate() {
            assert!(ins || s, "pending point {q} is in no conflict list");
        }
    }
}

/// Convenience: triangulate `points` by inserting them in index order.
/// Returns the final state (mesh + statistics).
pub fn delaunay(points: Vec<Point>) -> DelaunayState {
    let n = points.len();
    let mut st = DelaunayState::new(points);
    for p in 0..n as u32 {
        st.insert(p);
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::random_points;

    #[test]
    fn triangle_count_matches_euler() {
        for n in [1usize, 2, 3, 10, 100] {
            let pts = random_points(n, 1 << 12, n as u64);
            let st = delaunay(pts);
            // All data points are interior to the super-triangle:
            // T = 2·(n+3) − 2 − 3 = 2n + 1.
            assert_eq!(st.mesh().num_alive(), 2 * n + 1, "n = {n}");
            st.check_invariants();
        }
    }

    #[test]
    fn delaunay_property_holds() {
        let pts = random_points(150, 1 << 12, 9);
        let st = delaunay(pts);
        st.mesh().check_delaunay(st.inserted_flags());
    }

    #[test]
    fn insertion_order_does_not_change_triangle_count() {
        let pts = random_points(80, 1 << 12, 4);
        let st_fwd = delaunay(pts.clone());
        let mut st_rev = DelaunayState::new(pts.clone());
        for p in (0..80u32).rev() {
            st_rev.insert(p);
        }
        st_rev.check_invariants();
        st_rev.mesh().check_delaunay(st_rev.inserted_flags());
        assert_eq!(st_fwd.mesh().num_alive(), st_rev.mesh().num_alive());
        // A middle-out order.
        let mut st_mid = DelaunayState::new(pts);
        let mut order: Vec<u32> = (0..80).collect();
        order.sort_by_key(|&p| (p as i64 - 40).abs());
        for p in order {
            st_mid.insert(p);
        }
        st_mid.check_invariants();
        assert_eq!(st_fwd.mesh().num_alive(), st_mid.mesh().num_alive());
    }

    #[test]
    fn grid_points_with_cocircular_quadruples() {
        // A regular grid is full of cocircular quadruples: the strict
        // incircle test must keep the construction consistent regardless.
        let mut pts = Vec::new();
        for x in 0..8i64 {
            for y in 0..8i64 {
                pts.push(crate::point::Point::new(x * 100, y * 100));
            }
        }
        let n = pts.len();
        let st = delaunay(pts);
        assert_eq!(st.mesh().num_alive(), 2 * n + 1);
        st.check_invariants();
        st.mesh().check_delaunay(st.inserted_flags());
    }

    #[test]
    fn collinear_points_are_triangulated() {
        // All data points on one line: only the super-triangle vertices
        // break collinearity. Exercises the degenerate cavity shapes.
        let pts: Vec<_> = (0..20i64)
            .map(|i| crate::point::Point::new(i * 50, 1000))
            .collect();
        let n = pts.len();
        let st = delaunay(pts);
        assert_eq!(st.mesh().num_alive(), 2 * n + 1);
        st.check_invariants();
        st.mesh().check_delaunay(st.inserted_flags());
    }

    #[test]
    fn pending_conflicts_shrink_as_mesh_refines() {
        let pts = random_points(200, 1 << 12, 6);
        let mut st = DelaunayState::new(pts);
        // Initially all other points conflict with any point (single tri).
        assert_eq!(st.pending_in_cavity(0).len(), 199);
        for p in 0..100u32 {
            st.insert(p);
        }
        // After half the points are in, cavities are local and conflicts few.
        let late: usize = (100..200u32).map(|p| st.pending_in_cavity(p).len()).sum();
        let avg = late as f64 / 100.0;
        assert!(
            avg < 20.0,
            "average pending-conflict count {avg} should be O(1)-ish"
        );
    }

    #[test]
    fn cavity_grows_from_containing_triangle() {
        let pts = random_points(50, 1 << 12, 11);
        let mut st = DelaunayState::new(pts);
        for p in 0..25u32 {
            st.insert(p);
        }
        for p in 25..50u32 {
            let cav = st.cavity(p);
            assert!(!cav.is_empty());
            // The containing triangle is always in the cavity.
            assert!(cav.contains(&st.pt_tri[p as usize]));
            // Every cavity triangle's circumcircle contains p.
            for t in cav {
                assert!(st.mesh().in_circumcircle(t, p));
            }
        }
    }

    #[test]
    fn euler_formula_edges_and_degrees() {
        let n = 120;
        let pts = random_points(n, 1 << 13, 21);
        let st = delaunay(pts);
        let mesh = st.mesh();
        // V − E + F = 2 with F = live triangles + outer face,
        // V = n + 3 super vertices.
        let e = mesh.edges().len();
        let v = n + 3;
        let f = mesh.num_alive() + 1;
        assert_eq!(v as i64 - e as i64 + f as i64, 2, "Euler formula");
        // Sum of triangle-incidence degrees = 3T.
        let total: usize = mesh.vertex_degrees().iter().sum();
        assert_eq!(total, 3 * mesh.num_alive());
    }

    #[test]
    fn delaunay_maximizes_min_angle_vs_arbitrary_order_stability() {
        // The min-angle of the Delaunay triangulation is order-independent.
        let pts = random_points(100, 1 << 13, 22);
        let a = delaunay(pts.clone());
        let mut b = DelaunayState::new(pts);
        for p in (0..100u32).rev() {
            b.insert(p);
        }
        let (min_a, mean_a, cnt_a) = a.mesh().angle_stats().unwrap();
        let (min_b, mean_b, cnt_b) = b.mesh().angle_stats().unwrap();
        assert_eq!(cnt_a, cnt_b);
        assert!((min_a - min_b).abs() < 1e-9);
        assert!((mean_a - mean_b).abs() < 1e-9);
        assert!(min_a > 0.0 && min_a < 60.0 + 1e-9);
    }

    #[test]
    fn relocation_counter_advances() {
        let pts = random_points(100, 1 << 12, 13);
        let st = delaunay(pts);
        // Expected O(n log n) relocations; certainly more than n.
        assert!(st.relocations() > 100);
    }
}
