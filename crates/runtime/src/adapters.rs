//! [`Scheduler`] implementations for the workspace's concurrent queues.
//!
//! One runtime, many orders: the relaxed *priority* schedulers drive
//! label- and distance-ordered work (iterative algorithms, SSSP), the
//! relaxed *FIFO* drives frontier-ordered work (BFS, k-core peeling).
//! Every adapter maps the queue's native operations onto the runtime's
//! push/pop contract, reporting `push → false` when an existing entry was
//! merged so the termination counter stays exact.
//!
//! The sharded queues are **backend-generic**: the MultiQueue adapter
//! accepts any [`SubPriority`] priority shard (lock-free skiplist by
//! default, mutex-heap baseline), the FIFO adapters any
//! [`SubFifo`] sub-queue. All of them override the session-threaded
//! trait methods (`push_in`/`pop_from_in`) so the worker's long-lived
//! [`PinSession`](rsched_queues::PinSession) replaces per-operation
//! epoch entries.

use crate::pool::Scheduler;
use rand::rngs::SmallRng;
use rsched_queues::{
    ConcurrentMultiQueue, ConcurrentSprayList, DCboQueue, DRaQueue, DuplicateMultiQueue,
    PinSession, SubFifo, SubPriority,
};

/// Keyed MultiQueue over any priority-shard backend: pushes merge via
/// `push_or_decrease`, pops are the classic two-choice relaxed
/// delete-min (peek-and-claim — mutex-free on the default skiplist
/// backend).
impl<P: Ord + Copy + Send, S: SubPriority<P>> Scheduler<P> for ConcurrentMultiQueue<P, S> {
    fn push(&self, item: usize, prio: P, _rng: &mut SmallRng) -> bool {
        self.push_or_decrease(item, prio)
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        ConcurrentMultiQueue::pop(self, rng)
    }

    fn push_in(&self, item: usize, prio: P, _rng: &mut SmallRng, session: &PinSession) -> bool {
        self.push_or_decrease_in(item, prio, session)
    }

    fn pop_from_in(
        &self,
        _home: usize,
        rng: &mut SmallRng,
        session: &PinSession,
    ) -> Option<((usize, P), bool)> {
        // Keyed placement has no worker-home shard; steals are not a
        // meaningful notion here.
        self.pop_in(rng, session).map(|t| (t, false))
    }

    fn pin_session(&self) -> PinSession {
        Self::pin_session(self)
    }
}

/// Duplicate-insertion MultiQueue (the DecreaseKey ablation): every push
/// inserts a fresh copy, so pushes never merge.
impl<P: Ord + Copy + Send> Scheduler<P> for DuplicateMultiQueue<P> {
    fn push(&self, item: usize, prio: P, rng: &mut SmallRng) -> bool {
        DuplicateMultiQueue::push(self, item, prio, rng);
        true
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        DuplicateMultiQueue::pop(self, rng)
    }
}

/// Sharded SprayList: merge-on-push, spray-walk pops.
impl<P: Ord + Copy + Send> Scheduler<P> for ConcurrentSprayList<P> {
    fn push(&self, item: usize, prio: P, _rng: &mut SmallRng) -> bool {
        self.push_or_decrease(item, prio)
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        ConcurrentSprayList::pop(self, rng)
    }
}

/// Relaxed FIFO (d-CBO, any shard backend): the payload rides along as a
/// carried value (e.g. a BFS depth) rather than an ordering key; pops
/// prefer the worker's home shard and report choice-of-two steals.
impl<P: Copy + Send, S: SubFifo<(usize, P)>> Scheduler<P> for DCboQueue<(usize, P), S> {
    fn push(&self, item: usize, prio: P, rng: &mut SmallRng) -> bool {
        self.enqueue((item, prio), rng);
        true
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        self.dequeue(rng)
    }

    fn pop_from(&self, home: usize, rng: &mut SmallRng) -> Option<((usize, P), bool)> {
        self.dequeue_from(home, rng)
    }

    fn push_in(&self, item: usize, prio: P, rng: &mut SmallRng, session: &PinSession) -> bool {
        self.enqueue_in((item, prio), rng, session);
        true
    }

    fn pop_from_in(
        &self,
        home: usize,
        rng: &mut SmallRng,
        session: &PinSession,
    ) -> Option<((usize, P), bool)> {
        self.dequeue_from_in(home, rng, session)
    }

    fn pin_session(&self) -> PinSession {
        Self::pin_session(self)
    }
}

/// Relaxed FIFO (d-RA, any shard backend): same contract as the d-CBO
/// adapter, with oldest-visible-head dequeues instead of balanced
/// operation counts.
impl<P: Copy + Send, S: SubFifo<(usize, P)>> Scheduler<P> for DRaQueue<(usize, P), S> {
    fn push(&self, item: usize, prio: P, rng: &mut SmallRng) -> bool {
        self.enqueue((item, prio), rng);
        true
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        self.dequeue(rng)
    }

    fn pop_from(&self, home: usize, rng: &mut SmallRng) -> Option<((usize, P), bool)> {
        self.dequeue_from(home, rng)
    }

    fn push_in(&self, item: usize, prio: P, rng: &mut SmallRng, session: &PinSession) -> bool {
        self.enqueue_in((item, prio), rng, session);
        true
    }

    fn pop_from_in(
        &self,
        home: usize,
        rng: &mut SmallRng,
        session: &PinSession,
    ) -> Option<((usize, P), bool)> {
        self.dequeue_from_in(home, rng, session)
    }

    fn pin_session(&self) -> PinSession {
        Self::pin_session(self)
    }
}
