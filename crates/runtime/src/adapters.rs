//! [`Scheduler`] implementations for the workspace's concurrent queues.
//!
//! One runtime, many orders: the relaxed *priority* schedulers drive
//! label- and distance-ordered work (iterative algorithms, SSSP), the
//! relaxed *FIFOs* drive frontier-ordered work (BFS, label propagation,
//! k-core peeling). Every adapter maps the queue's native session onto
//! the runtime's [`Scheduler::Session`] and routes the conservation
//! signals ([`PushOutcome`], [`FlushReport`]) through unchanged so the
//! termination counter stays exact.
//!
//! The sharded queues are **backend-generic**: the MultiQueue adapter
//! accepts any [`SubPriority`] priority shard (lock-free skiplist by
//! default, mutex-heap baseline), the FIFO adapters any [`SubFifo`]
//! sub-queue. Their sessions carry the amortized epoch pin, so the
//! worker loop performs zero per-operation epoch entries; the simple
//! schedulers (`DuplicateMultiQueue`, `ConcurrentSprayList`) use a bare
//! `SmallRng` as their session.

use crate::pool::Scheduler;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rsched_queues::{
    BucketFifoQueue, BucketSession, ConcurrentMultiQueue, ConcurrentSprayList, DCboQueue, DRaQueue,
    DuplicateMultiQueue, FifoSession, FlushReport, MqSession, PopSource, PushOutcome,
    SessionConfig, SessionPush, SubFifo, SubPriority,
};

/// Keyed MultiQueue over any priority-shard backend: pushes merge via
/// `push_or_decrease` (locally in the session buffer when batching),
/// pops are the choice-of-two relaxed delete-min with the session's
/// sticky peek cache — mutex-free on the default skiplist backend.
impl<P: Ord + Copy + Send, S: SubPriority<P>> Scheduler<P> for ConcurrentMultiQueue<P, S> {
    type Session = MqSession<P>;

    fn open_session(&self, cfg: &SessionConfig) -> MqSession<P> {
        self.session(cfg)
    }

    fn push(&self, session: &mut MqSession<P>, item: usize, prio: P) -> PushOutcome {
        self.push_session(item, prio, session)
    }

    fn pop(&self, session: &mut MqSession<P>) -> Option<((usize, P), PopSource)> {
        self.pop_session(session)
    }

    fn flush(&self, session: &mut MqSession<P>) -> FlushReport {
        self.flush_session(session)
    }
}

/// Bucketed relaxed-FIFO hybrid (any priority-shard backend): the
/// payload is the full priority (a distance); the queue buckets it by
/// `⌊prio/Δ⌋`, pops oldest-bucket-first with priority relaxation inside
/// the bucket, and merges repeated items per bucket. Δ-stepping without
/// barriers: bucket advance is just the floor racing forward, and
/// termination is the runtime's ordinary quiescence detection.
impl<S: SubPriority<u64>> Scheduler<u64> for BucketFifoQueue<S> {
    type Session = BucketSession;

    fn open_session(&self, cfg: &SessionConfig) -> BucketSession {
        self.session(cfg)
    }

    fn push(&self, session: &mut BucketSession, item: usize, prio: u64) -> PushOutcome {
        self.push_session(item, prio, session)
    }

    fn pop(&self, session: &mut BucketSession) -> Option<((usize, u64), PopSource)> {
        self.pop_session(session)
    }

    fn flush(&self, session: &mut BucketSession) -> FlushReport {
        self.flush_session(session)
    }
}

/// Duplicate-insertion MultiQueue (the DecreaseKey ablation): every push
/// inserts a fresh copy, so pushes never merge or buffer and the session
/// is just the worker's RNG stream.
impl<P: Ord + Copy + Send> Scheduler<P> for DuplicateMultiQueue<P> {
    type Session = SmallRng;

    fn open_session(&self, cfg: &SessionConfig) -> SmallRng {
        SmallRng::seed_from_u64(cfg.seed)
    }

    fn push(&self, session: &mut SmallRng, item: usize, prio: P) -> PushOutcome {
        DuplicateMultiQueue::push(self, item, prio, session);
        PushOutcome {
            push: SessionPush::Inserted,
            flushed: FlushReport::default(),
        }
    }

    fn pop(&self, session: &mut SmallRng) -> Option<((usize, P), PopSource)> {
        DuplicateMultiQueue::pop(self, session).map(|t| (t, PopSource::Shared))
    }
}

/// Sharded SprayList: merge-on-push, spray-walk pops, RNG-only session.
impl<P: Ord + Copy + Send> Scheduler<P> for ConcurrentSprayList<P> {
    type Session = SmallRng;

    fn open_session(&self, cfg: &SessionConfig) -> SmallRng {
        SmallRng::seed_from_u64(cfg.seed)
    }

    fn push(&self, _session: &mut SmallRng, item: usize, prio: P) -> PushOutcome {
        let push = if self.push_or_decrease(item, prio) {
            SessionPush::Inserted
        } else {
            SessionPush::Merged
        };
        PushOutcome {
            push,
            flushed: FlushReport::default(),
        }
    }

    fn pop(&self, session: &mut SmallRng) -> Option<((usize, P), PopSource)> {
        ConcurrentSprayList::pop(self, session).map(|t| (t, PopSource::Shared))
    }
}

/// Relaxed FIFO (d-CBO, any shard backend): the payload rides along as a
/// carried value (e.g. a BFS depth) rather than an ordering key; the
/// session owns home shards, drains them first and batches spawns.
impl<P: Copy + Send, S: SubFifo<(usize, P)>> Scheduler<P> for DCboQueue<(usize, P), S> {
    type Session = FifoSession<(usize, P)>;

    fn open_session(&self, cfg: &SessionConfig) -> Self::Session {
        self.session(cfg)
    }

    fn push(&self, session: &mut Self::Session, item: usize, prio: P) -> PushOutcome {
        self.push_session((item, prio), session)
    }

    fn pop(&self, session: &mut Self::Session) -> Option<((usize, P), PopSource)> {
        self.pop_session(session)
    }

    fn flush(&self, session: &mut Self::Session) -> FlushReport {
        self.flush_session(session)
    }
}

/// Relaxed FIFO (d-RA, any shard backend): same contract as the d-CBO
/// adapter, with oldest-visible-head dequeues instead of balanced
/// operation counts.
impl<P: Copy + Send, S: SubFifo<(usize, P)>> Scheduler<P> for DRaQueue<(usize, P), S> {
    type Session = FifoSession<(usize, P)>;

    fn open_session(&self, cfg: &SessionConfig) -> Self::Session {
        self.session(cfg)
    }

    fn push(&self, session: &mut Self::Session, item: usize, prio: P) -> PushOutcome {
        self.push_session((item, prio), session)
    }

    fn pop(&self, session: &mut Self::Session) -> Option<((usize, P), PopSource)> {
        self.pop_session(session)
    }

    fn flush(&self, session: &mut Self::Session) -> FlushReport {
        self.flush_session(session)
    }
}
