//! [`Scheduler`] implementations for the workspace's concurrent queues.
//!
//! One runtime, many orders: the relaxed *priority* schedulers drive
//! label- and distance-ordered work (iterative algorithms, SSSP), the
//! relaxed *FIFO* drives frontier-ordered work (BFS, k-core peeling).
//! Every adapter maps the queue's native operations onto the runtime's
//! push/pop contract, reporting `push → false` when an existing entry was
//! merged so the termination counter stays exact.

use crate::pool::Scheduler;
use rand::rngs::SmallRng;
use rsched_queues::{
    ConcurrentMultiQueue, ConcurrentSprayList, DCboQueue, DRaQueue, DuplicateMultiQueue, SubFifo,
};

/// Keyed MultiQueue: pushes merge via `push_or_decrease`, pops are the
/// classic two-choice relaxed delete-min.
impl<P: Ord + Copy + Send> Scheduler<P> for ConcurrentMultiQueue<P> {
    fn push(&self, item: usize, prio: P, _rng: &mut SmallRng) -> bool {
        self.push_or_decrease(item, prio)
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        ConcurrentMultiQueue::pop(self, rng)
    }
}

/// Duplicate-insertion MultiQueue (the DecreaseKey ablation): every push
/// inserts a fresh copy, so pushes never merge.
impl<P: Ord + Copy + Send> Scheduler<P> for DuplicateMultiQueue<P> {
    fn push(&self, item: usize, prio: P, rng: &mut SmallRng) -> bool {
        DuplicateMultiQueue::push(self, item, prio, rng);
        true
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        DuplicateMultiQueue::pop(self, rng)
    }
}

/// Sharded SprayList: merge-on-push, spray-walk pops.
impl<P: Ord + Copy + Send> Scheduler<P> for ConcurrentSprayList<P> {
    fn push(&self, item: usize, prio: P, _rng: &mut SmallRng) -> bool {
        self.push_or_decrease(item, prio)
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        ConcurrentSprayList::pop(self, rng)
    }
}

/// Relaxed FIFO (d-CBO, any shard backend): the payload rides along as a
/// carried value (e.g. a BFS depth) rather than an ordering key; pops
/// prefer the worker's home shard and report choice-of-two steals.
impl<P: Copy + Send, S: SubFifo<(usize, P)>> Scheduler<P> for DCboQueue<(usize, P), S> {
    fn push(&self, item: usize, prio: P, rng: &mut SmallRng) -> bool {
        self.enqueue((item, prio), rng);
        true
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        self.dequeue(rng)
    }

    fn pop_from(&self, home: usize, rng: &mut SmallRng) -> Option<((usize, P), bool)> {
        self.dequeue_from(home, rng)
    }

    fn pin_session(&self) -> rsched_queues::PinSession {
        Self::pin_session(self)
    }
}

/// Relaxed FIFO (d-RA, any shard backend): same contract as the d-CBO
/// adapter, with oldest-visible-head dequeues instead of balanced
/// operation counts.
impl<P: Copy + Send, S: SubFifo<(usize, P)>> Scheduler<P> for DRaQueue<(usize, P), S> {
    fn push(&self, item: usize, prio: P, rng: &mut SmallRng) -> bool {
        self.enqueue((item, prio), rng);
        true
    }

    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)> {
        self.dequeue(rng)
    }

    fn pop_from(&self, home: usize, rng: &mut SmallRng) -> Option<((usize, P), bool)> {
        self.dequeue_from(home, rng)
    }

    fn pin_session(&self) -> rsched_queues::PinSession {
        Self::pin_session(self)
    }
}
