//! Environment-variable knob parsing shared across the workspace.
//!
//! Every layer that exposes `RSCHED_*` tuning knobs — [`RuntimeConfig`]
//! in this crate, the serving front-end (`rsched-serve`), the
//! experiment binaries (`rsched-bench`, which re-exports these helpers
//! so its bins keep their import paths) — parses them through this one
//! module. It lives here rather than in `rsched-core` because the
//! workspace's dependency arrow points the other way (`rsched-core`
//! builds *on* the runtime): the runtime is the lowest crate that
//! defines env-tunable configuration.
//!
//! All helpers treat an unset **or unparsable** variable as absent and
//! fall back to the given default — a typo'd knob degrades to the
//! documented default instead of aborting a long benchmark run.
//!
//! [`RuntimeConfig`]: crate::RuntimeConfig

/// A `usize` knob from the environment, falling back to `default` when
/// unset or unparsable.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
}

/// An *optional* `usize` knob: `None` when the variable is unset or
/// unparsable — for knobs whose absence means "derive it" (e.g.
/// `RSCHED_SHARDS` falling back to a per-thread multiplier).
pub fn env_opt_usize(key: &str) -> Option<usize> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
}

/// A `u64` knob from the environment, falling back to `default` when
/// unset or unparsable.
pub fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default)
}

/// An `f64` knob from the environment, falling back to `default` when
/// unset or unparsable (e.g. `RSCHED_COMPARE_TOL=0.35`).
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default)
}

/// A comma-separated sweep list from the environment, parsed into any
/// `FromStr` element type; falls back to `default` when the variable is
/// unset or yields no parsable entries. The one list parser every
/// contention/ablation/serving bin uses for its multi-valued axes.
pub fn env_list<T: std::str::FromStr + Clone>(key: &str, default: &[T]) -> Vec<T> {
    match std::env::var(key) {
        Ok(list) => {
            let parsed: Vec<T> = list
                .split(',')
                .filter_map(|v| v.trim().parse::<T>().ok())
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// [`env_list`] specialized to `usize` (the common case; e.g.
/// `RSCHED_STICKINESS=1,4,16`).
pub fn env_usize_list(key: &str, default: &[usize]) -> Vec<usize> {
    env_list(key, default)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global env mutation: each test uses its own unique key so
    // parallel test threads cannot interfere.

    #[test]
    fn usize_knob_defaults_and_parses() {
        assert_eq!(env_usize("RSCHED_ENV_TEST_UNSET_A", 7), 7);
        std::env::set_var("RSCHED_ENV_TEST_A", "42");
        assert_eq!(env_usize("RSCHED_ENV_TEST_A", 7), 42);
        std::env::set_var("RSCHED_ENV_TEST_A", "nope");
        assert_eq!(env_usize("RSCHED_ENV_TEST_A", 7), 7);
        std::env::remove_var("RSCHED_ENV_TEST_A");
    }

    #[test]
    fn opt_usize_distinguishes_absent() {
        assert_eq!(env_opt_usize("RSCHED_ENV_TEST_UNSET_B"), None);
        std::env::set_var("RSCHED_ENV_TEST_B", "3");
        assert_eq!(env_opt_usize("RSCHED_ENV_TEST_B"), Some(3));
        std::env::remove_var("RSCHED_ENV_TEST_B");
    }

    #[test]
    fn list_knob_splits_and_filters() {
        assert_eq!(env_usize_list("RSCHED_ENV_TEST_UNSET_C", &[1, 2]), [1, 2]);
        std::env::set_var("RSCHED_ENV_TEST_C", "4, 8,junk,16");
        assert_eq!(env_usize_list("RSCHED_ENV_TEST_C", &[1]), [4, 8, 16]);
        std::env::set_var("RSCHED_ENV_TEST_C", "junk");
        assert_eq!(env_usize_list("RSCHED_ENV_TEST_C", &[1]), [1]);
        std::env::remove_var("RSCHED_ENV_TEST_C");
    }

    #[test]
    fn float_and_u64_knobs() {
        assert!((env_f64("RSCHED_ENV_TEST_UNSET_D", 0.4) - 0.4).abs() < 1e-12);
        std::env::set_var("RSCHED_ENV_TEST_D", "0.25");
        assert!((env_f64("RSCHED_ENV_TEST_D", 0.4) - 0.25).abs() < 1e-12);
        std::env::remove_var("RSCHED_ENV_TEST_D");
        assert_eq!(env_u64("RSCHED_ENV_TEST_UNSET_D", 9), 9);
    }
}
