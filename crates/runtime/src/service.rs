//! Open-system service mode: a long-lived worker pool with external
//! task injection and graceful drain.
//!
//! [`run`](crate::run) is closed-loop — it seeds a queue, drains it to
//! quiescence and returns. A *serving* workload is the opposite shape:
//! the pool outlives any one task, work arrives from threads that are
//! not workers (connection readers in `rsched-serve`, load generators),
//! and "empty" means *idle, wait for traffic*, not *done*. This module
//! provides that shape on top of the exact same [`Scheduler`] /
//! [`Worker`] machinery:
//!
//! * [`service`] starts `cfg.threads` detached workers over an
//!   `Arc<S>` and returns a [`ServiceHandle`].
//! * [`ServiceHandle::injector`] mints an [`Injector`] — a per-thread
//!   handle wrapping its own scheduler session, so **any** external
//!   thread can push into the running pool without being a worker (and
//!   without per-op locking: the session is thread-owned state, exactly
//!   as for workers). Injected tasks are announced to the termination
//!   counter before they become poppable, so a drain can never miss
//!   them.
//! * Idle workers park on a condvar (`IdleGate`) **only when the pool
//!   is quiescent**; an injection wakes one parked worker. While tasks
//!   are in flight anywhere, a worker that missed a pop spins/yields
//!   exactly like the closed-loop pool — parking there would add a
//!   wakeup latency cliff to every task tail.
//! * [`ServiceHandle::shutdown`] + [`ServiceHandle::join`] implement
//!   graceful drain: workers exit only once shutdown is flagged **and**
//!   the pool is quiescent, so every task injected before `shutdown`
//!   completes before `join` returns its [`PoolStats`].
//!
//! The missed-wakeup race is closed by the classic condvar protocol:
//! a worker re-checks "work or shutdown?" *while holding the gate
//! mutex* before waiting, and the injector takes the same mutex to
//! notify; a bounded park timeout backstops the remaining
//! relaxed-queue raciness (a pop can miss an element that is visible
//! to the counter but still migrating between shards).

use crate::pool::{PoolStats, RuntimeConfig, Scheduler, TaskOutcome, Worker, WorkerStats};
use crate::termination::ActiveCounter;
use crossbeam::utils::Backoff;
use rsched_queues::telemetry;
use rsched_queues::trace::{self, EventKind};
use rsched_queues::{SessionConfig, SessionPush};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Condvar gate idle workers park on while the pool is quiescent.
#[derive(Debug, Default)]
struct IdleGate {
    lock: Mutex<()>,
    cv: Condvar,
}

/// Parked workers re-check every 2 ms even without a wakeup — a
/// backstop against the inherent raciness of relaxed-queue emptiness
/// (an element can be announced to the counter yet transiently
/// invisible to a sweep), not the primary wake path.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

impl IdleGate {
    /// Park until [`wake_one`](Self::wake_one)/[`wake_all`](Self::wake_all),
    /// the timeout, or `wake_now` already holding: the recheck happens
    /// under the gate lock, so a notifier that takes the lock after us
    /// cannot slip between our check and our wait.
    fn park(&self, wake_now: impl Fn() -> bool) {
        let guard = self.lock.lock().expect("idle gate poisoned");
        if wake_now() {
            return;
        }
        let _ = self
            .cv
            .wait_timeout(guard, PARK_TIMEOUT)
            .expect("idle gate poisoned");
    }

    fn wake_one(&self) {
        let _guard = self.lock.lock().expect("idle gate poisoned");
        self.cv.notify_one();
    }

    fn wake_all(&self) {
        let _guard = self.lock.lock().expect("idle gate poisoned");
        self.cv.notify_all();
    }
}

/// State shared by the workers, the handle and every injector.
struct ServiceCore<P: Copy, S: Scheduler<P> + ?Sized> {
    counter: ActiveCounter,
    idle: IdleGate,
    shutdown: AtomicBool,
    /// Seed sequence for injector sessions (each injector gets its own
    /// RNG stream, like a worker).
    injector_seq: AtomicU64,
    cfg: RuntimeConfig,
    queue: Arc<S>,
    _payload: PhantomData<fn(P)>,
}

/// Handle to a running service pool (see [`service`]). Cloneable across
/// threads via `Arc` by the caller if needed; the handle itself owns
/// the worker join handles, so [`join`](Self::join) consumes it.
pub struct ServiceHandle<P: Copy, S: Scheduler<P> + ?Sized> {
    core: Arc<ServiceCore<P, S>>,
    workers: Vec<JoinHandle<WorkerStats>>,
    started: Instant,
}

/// A per-thread handle for pushing tasks into a running service pool.
///
/// Owns a scheduler session of its own (epoch pin, shard-picker RNG),
/// configured unaffine — an injector has no home shards to keep hot —
/// and with `spawn_batch` forced to 1, because a parked injection would
/// trade exactly the latency a serving front-end exists to measure.
/// Deliberately **not** `Send` when the underlying session is not: the
/// epoch pin is thread-owned state.
pub struct Injector<P: Copy, S: Scheduler<P> + ?Sized> {
    core: Arc<ServiceCore<P, S>>,
    session: S::Session,
}

impl<P: Copy, S: Scheduler<P> + ?Sized> Injector<P, S> {
    /// Push `(item, prio)` into the running pool and wake a parked
    /// worker if the pool was idle. Returns `false` — without pushing —
    /// once the pool is shutting down (callers stop injecting before
    /// [`ServiceHandle::shutdown`]; this is the backstop that keeps a
    /// late racing inject from stranding a task in a drained pool).
    pub fn inject(&mut self, item: usize, prio: P) -> bool {
        if self.core.shutdown.load(Ordering::Acquire) {
            return false;
        }
        // Announce before pushing — same protocol as `Worker::spawn` —
        // so a concurrent drain sees the task before it is poppable.
        self.core.counter.task_added();
        trace::emit(EventKind::TaskInject, item as u64);
        let out = self.core.queue.push(&mut self.session, item, prio);
        match out.push {
            SessionPush::Inserted | SessionPush::Buffered => {}
            SessionPush::Merged => self.core.counter.task_done(),
        }
        self.core.counter.tasks_done(out.flushed.merged);
        self.core.idle.wake_one();
        true
    }

    /// Tasks queued or in flight right now (the pool's view; a serving
    /// layer usually runs its own admission counter on top).
    pub fn in_flight(&self) -> usize {
        self.core.counter.active()
    }
}

impl<P: Copy, S: Scheduler<P> + ?Sized> Drop for Injector<P, S> {
    fn drop(&mut self) {
        // spawn_batch is 1, so the session buffer is empty; the flush is
        // defensive against future batching injectors.
        let report = self.core.queue.flush(&mut self.session);
        self.core.counter.tasks_done(report.merged);
        if report.published > 0 {
            self.core.idle.wake_all();
        }
    }
}

impl<P, S> ServiceHandle<P, S>
where
    P: Copy + Send + 'static,
    S: Scheduler<P> + Send + Sync + ?Sized + 'static,
{
    /// Mint an injector for the calling thread (each long-lived
    /// injecting thread should keep its own).
    pub fn injector(&self) -> Injector<P, S> {
        let n = self.core.injector_seq.fetch_add(1, Ordering::Relaxed);
        let cfg = SessionConfig {
            // Injectors publish immediately; a batched injection would
            // park a request's latency inside the injector.
            spawn_batch: 1,
            ..SessionConfig::unaffine(
                self.core.cfg.seed ^ 0x1439_EC7E_D000_0000 ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        };
        Injector {
            core: Arc::clone(&self.core),
            session: self.core.queue.open_session(&cfg),
        }
    }

    /// Tasks queued or in flight right now.
    pub fn in_flight(&self) -> usize {
        self.core.counter.active()
    }

    /// Flag the pool to drain: workers finish everything injected so
    /// far, then exit. Idempotent; injections from here on are refused.
    pub fn shutdown(&self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.idle.wake_all();
    }

    /// Graceful drain: [`shutdown`](Self::shutdown) (if not already
    /// flagged), wait for every worker to finish its backlog, and
    /// return the aggregated [`PoolStats`]. `telemetry` is `None` —
    /// a long-lived service measures explicit windows via
    /// `rsched_queues::telemetry::{reset, capture}` instead of
    /// one implicit whole-run window.
    pub fn join(self) -> PoolStats {
        self.shutdown();
        let per_worker: Vec<WorkerStats> = self
            .workers
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect();
        debug_assert!(self.core.counter.is_quiescent());
        let mut total = WorkerStats::default();
        for w in &per_worker {
            total.merge(w);
        }
        let wall = self.started.elapsed();
        // Drained and joined: a consistent flight-recorder boundary,
        // same as the end of a closed-loop `run`.
        trace::export_if_configured();
        PoolStats {
            total,
            per_worker,
            wall,
            total_wall: wall,
            telemetry: None,
        }
    }
}

/// Start a long-lived service pool: `cfg.threads` workers drive `queue`
/// with `handler`, waiting (parked, not spinning) whenever the pool is
/// quiescent. Tasks arrive through [`ServiceHandle::injector`] handles;
/// the pool runs until [`ServiceHandle::join`] drains it.
///
/// # Examples
///
/// ```
/// use rsched_queues::QueueBuilder;
/// use rsched_runtime::{service, RuntimeConfig, TaskOutcome};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let queue = Arc::new(QueueBuilder::new(4).universe(1024).multiqueue::<u64>());
/// let done = Arc::new(AtomicU64::new(0));
/// let handle = {
///     let done = Arc::clone(&done);
///     service(queue, RuntimeConfig::with_threads(2), move |_, _, _| {
///         done.fetch_add(1, Ordering::Relaxed);
///         TaskOutcome::Executed
///     })
/// };
/// let mut inj = handle.injector();
/// for i in 0..100 {
///     assert!(inj.inject(i, i as u64));
/// }
/// drop(inj);
/// let stats = handle.join(); // graceful drain
/// assert_eq!(done.load(Ordering::Acquire), 100);
/// assert_eq!(stats.total.executed, 100);
/// ```
pub fn service<P, S, F>(queue: Arc<S>, cfg: RuntimeConfig, handler: F) -> ServiceHandle<P, S>
where
    P: Copy + Send + 'static,
    S: Scheduler<P> + Send + Sync + ?Sized + 'static,
    F: Fn(&mut Worker<'_, P, S>, usize, P) -> TaskOutcome + Send + Sync + 'static,
{
    assert!(cfg.threads >= 1, "service needs at least one worker");
    telemetry::set_enabled(cfg.telemetry);
    trace::set_enabled(cfg.trace);
    let core = Arc::new(ServiceCore {
        counter: ActiveCounter::new(),
        idle: IdleGate::default(),
        shutdown: AtomicBool::new(false),
        injector_seq: AtomicU64::new(0),
        cfg,
        queue,
        _payload: PhantomData,
    });
    let handler = Arc::new(handler);
    let workers = (0..cfg.threads)
        .map(|tid| {
            let core = Arc::clone(&core);
            let handler = Arc::clone(&handler);
            std::thread::Builder::new()
                .name(format!("rsched-serve-worker-{tid}"))
                .spawn(move || service_worker_loop(tid, &core, &*handler))
                .expect("spawning service worker")
        })
        .collect();
    ServiceHandle {
        core,
        workers,
        started: Instant::now(),
    }
}

fn service_worker_loop<P, S, F>(tid: usize, core: &ServiceCore<P, S>, handler: &F) -> WorkerStats
where
    P: Copy,
    S: Scheduler<P> + ?Sized,
    F: Fn(&mut Worker<'_, P, S>, usize, P) -> TaskOutcome,
{
    let mut worker = Worker::open(tid, &core.cfg, &*core.queue, &core.counter);
    let backoff = Backoff::new();
    let blocked = Backoff::new();
    loop {
        match worker.try_pop() {
            Some(((item, prio), source)) => {
                backoff.reset();
                worker.execute_popped(handler, item, prio, source, &blocked);
            }
            None => {
                if worker.flush_on_miss() {
                    continue;
                }
                let quiescent = worker.counter().is_quiescent();
                if quiescent && core.shutdown.load(Ordering::Acquire) {
                    trace::emit(EventKind::Drain, tid as u64);
                    break;
                }
                if quiescent {
                    // About to go idle: fold this worker's buffered
                    // telemetry into the globals so a live `Metrics`
                    // poll (the serving plane's exposition path) sees
                    // it — long-lived workers never exit, so the TLS
                    // Drop-flush alone would hide everything.
                    telemetry::flush_local();
                    trace::emit(EventKind::Park, tid as u64);
                    // Idle open system: park until an injection (or the
                    // timeout backstop) instead of burning a core.
                    core.idle.park(|| {
                        core.shutdown.load(Ordering::Acquire) || !core.counter.is_quiescent()
                    });
                    trace::emit(EventKind::Unpark, !core.counter.is_quiescent() as u64);
                    backoff.reset();
                } else {
                    // Work is in flight somewhere — same spin/yield as
                    // the closed-loop pool.
                    backoff.snooze();
                }
            }
        }
    }
    worker.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_queues::{DCboQueue, QueueBuilder};
    use std::sync::atomic::{AtomicBool as ABool, AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn external_injectors_feed_running_pool_exactly_once() {
        let n = 4_000usize;
        let injectors = 3usize;
        let done: Arc<Vec<ABool>> = Arc::new((0..n).map(|_| ABool::new(false)).collect());
        let queue = Arc::new(QueueBuilder::new(8).universe(n).multiqueue::<u64>());
        let handle = {
            let done = Arc::clone(&done);
            service(
                queue,
                RuntimeConfig {
                    threads: 3,
                    seed: 11,
                    ..RuntimeConfig::default()
                },
                move |_, item, _| {
                    let was = done[item].swap(true, Ordering::AcqRel);
                    assert!(!was, "task {item} executed twice");
                    TaskOutcome::Executed
                },
            )
        };
        let barrier = Barrier::new(injectors);
        std::thread::scope(|scope| {
            for part in 0..injectors {
                let handle = &handle;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut inj = handle.injector();
                    barrier.wait();
                    let mut i = part;
                    while i < n {
                        assert!(inj.inject(i, i as u64));
                        i += injectors;
                    }
                });
            }
        });
        let stats = handle.join();
        assert_eq!(stats.total.executed, n as u64);
        assert!(done.iter().all(|d| d.load(Ordering::Acquire)));
        assert_eq!(stats.per_worker.len(), 3);
    }

    #[test]
    fn shutdown_drains_backlog_and_refuses_late_injections() {
        let executed = Arc::new(AtomicU64::new(0));
        let queue: Arc<DCboQueue<(usize, u64)>> = Arc::new(QueueBuilder::new(8).seed(3).d_cbo());
        let handle = {
            let executed = Arc::clone(&executed);
            service(
                queue,
                RuntimeConfig {
                    threads: 2,
                    seed: 5,
                    ..RuntimeConfig::default()
                },
                move |_, _, _| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(50));
                    TaskOutcome::Executed
                },
            )
        };
        let mut inj = handle.injector();
        for i in 0..500usize {
            assert!(inj.inject(i, 0));
        }
        handle.shutdown();
        assert!(!inj.inject(999, 0), "post-shutdown inject must refuse");
        drop(inj);
        let stats = handle.join();
        assert_eq!(stats.total.executed, 500, "drain must finish the backlog");
        assert_eq!(executed.load(Ordering::Acquire), 500);
    }

    #[test]
    fn idle_pool_wakes_for_late_traffic() {
        // Tasks arrive in bursts with idle gaps longer than the park
        // timeout: every burst must still complete (wakeup path works),
        // and handler-side spawns must too (worker spawn inside service).
        let executed = Arc::new(AtomicU64::new(0));
        let queue = Arc::new(QueueBuilder::new(4).universe(1 << 16).multiqueue::<u64>());
        let handle = {
            let executed = Arc::clone(&executed);
            service(
                queue,
                RuntimeConfig {
                    threads: 2,
                    seed: 7,
                    ..RuntimeConfig::default()
                },
                move |w, item, prio| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    if prio > 0 {
                        w.spawn(item + 1000, prio - 1);
                    }
                    TaskOutcome::Executed
                },
            )
        };
        let mut inj = handle.injector();
        let mut expected = 0u64;
        for burst in 0..4u64 {
            for i in 0..50usize {
                assert!(inj.inject(burst as usize * 10_000 + i, 2));
                expected += 3; // the task + a chain of 2 spawned children
            }
            std::thread::sleep(Duration::from_millis(8));
            assert_eq!(
                executed.load(Ordering::Acquire),
                expected,
                "burst {burst} did not drain while idle-parked"
            );
        }
        drop(inj);
        let stats = handle.join();
        assert_eq!(stats.total.executed, expected);
    }
}
