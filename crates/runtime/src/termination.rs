//! Quiescence-based termination detection and contention-free statistics.
//!
//! Relaxed concurrent queues cannot give a linearizable emptiness check
//! (`pop` returning `None` races with concurrent pushes), so the runtime's
//! worker loops use an [`ActiveCounter`]: the count of *elements queued plus
//! tasks being processed*. A worker that sees an empty queue may only
//! terminate once the counter reaches zero — at that instant no task is
//! queued and no running task can produce one, so the system is quiescent
//! for good. This is the epoch-style detector every executor in the
//! workspace shares; it used to live in `rsched-core::parallel` and moved
//! here when the runtime became the single concurrency substrate.

use crossbeam::utils::Backoff;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Termination-detection counter for concurrent task pools.
///
/// Protocol:
/// 1. call [`task_added`](ActiveCounter::task_added) **before** pushing a
///    task to the queue;
/// 2. after popping a task, process it (pushing any children, each preceded
///    by its own `task_added`), then call
///    [`task_done`](ActiveCounter::task_done);
/// 3. a worker whose pop returned `None` calls
///    [`wait_or_quiescent`](ActiveCounter::wait_or_quiescent); `true` means
///    globally done, `false` means "retry popping".
///
/// # Examples
///
/// ```
/// use rsched_runtime::ActiveCounter;
///
/// let c = ActiveCounter::new();
/// c.task_added();
/// assert!(!c.is_quiescent());
/// c.task_done();
/// assert!(c.is_quiescent());
/// ```
#[derive(Debug, Default)]
pub struct ActiveCounter {
    active: AtomicUsize,
}

impl ActiveCounter {
    /// A counter starting at zero (quiescent).
    pub fn new() -> Self {
        Self {
            active: AtomicUsize::new(0),
        }
    }

    /// Announce a task about to be queued.
    #[inline]
    pub fn task_added(&self) {
        self.active.fetch_add(1, Ordering::AcqRel);
    }

    /// Announce completion of a popped task (after its children, if any,
    /// were announced and queued).
    #[inline]
    pub fn task_done(&self) {
        let prev = self.active.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "task_done without matching task_added");
    }

    /// Batch form of [`task_done`](Self::task_done): retract `n`
    /// announcements at once (how a session flush reports its merged
    /// elements). A no-op for `n == 0`.
    #[inline]
    pub fn tasks_done(&self, n: u64) {
        if n > 0 {
            let prev = self.active.fetch_sub(n as usize, Ordering::AcqRel);
            debug_assert!(prev >= n as usize, "tasks_done without matching adds");
        }
    }

    /// `true` iff no tasks are queued or in flight.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        self.active.load(Ordering::Acquire) == 0
    }

    /// Tasks queued or in flight right now — a racy observability
    /// reading (exact only at quiescence), what a serving layer's
    /// admission logic and stats endpoints report.
    #[inline]
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Back off briefly; returns `true` if the pool is quiescent (caller
    /// should terminate), `false` to retry popping.
    #[inline]
    pub fn wait_or_quiescent(&self, backoff: &Backoff) -> bool {
        if self.is_quiescent() {
            return true;
        }
        backoff.snooze();
        false
    }
}

/// A cache-padded set of per-thread counters summed on demand — cheap
/// statistics aggregation for concurrent executors (task counts, wasted
/// pops) without cross-thread contention on a single atomic.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Box<[crossbeam::utils::CachePadded<AtomicU64>]>,
}

impl ShardedCounter {
    /// One shard per thread.
    pub fn new(threads: usize) -> Self {
        Self {
            shards: (0..threads.max(1))
                .map(|_| crossbeam::utils::CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Increment thread `tid`'s shard by `by`.
    #[inline]
    pub fn add(&self, tid: usize, by: u64) {
        self.shards[tid].fetch_add(by, Ordering::Relaxed);
    }

    /// Sum over all shards (exact once threads are joined).
    pub fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Acquire)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let c = ActiveCounter::new();
        assert!(c.is_quiescent());
        c.task_added();
        c.task_added();
        c.task_done();
        assert!(!c.is_quiescent());
        c.task_done();
        assert!(c.is_quiescent());
    }

    #[test]
    fn sharded_counter_sums() {
        let c = ShardedCounter::new(4);
        c.add(0, 5);
        c.add(3, 7);
        c.add(0, 1);
        assert_eq!(c.sum(), 13);
    }

    #[test]
    fn termination_protocol_under_threads() {
        // A synthetic task pool: each task spawns children until a depth
        // budget runs out; termination detection must not fire early and
        // must fire eventually.
        use crossbeam::utils::Backoff;
        use std::sync::Arc;
        let queue: Arc<crossbeam::queue::SegQueue<u32>> =
            Arc::new(crossbeam::queue::SegQueue::new());
        let counter = Arc::new(ActiveCounter::new());
        let processed = Arc::new(AtomicU64::new(0));
        counter.task_added();
        queue.push(6); // depth-6 binary tree => 2^7 - 1 = 127 tasks
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let counter = Arc::clone(&counter);
                let processed = Arc::clone(&processed);
                std::thread::spawn(move || {
                    let backoff = Backoff::new();
                    loop {
                        match queue.pop() {
                            Some(depth) => {
                                backoff.reset();
                                if depth > 0 {
                                    counter.task_added();
                                    queue.push(depth - 1);
                                    counter.task_added();
                                    queue.push(depth - 1);
                                }
                                processed.fetch_add(1, Ordering::Relaxed);
                                counter.task_done();
                            }
                            None => {
                                if counter.wait_or_quiescent(&backoff) {
                                    break;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(processed.load(Ordering::Acquire), 127);
        assert!(counter.is_quiescent());
        assert!(queue.pop().is_none());
    }
}
