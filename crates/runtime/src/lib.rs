//! # rsched-runtime — the sharded concurrent scheduling runtime
//!
//! The single concurrency substrate of the workspace. Before this crate,
//! every truly concurrent executor (`parallel_sssp`, the iterative
//! `run_relaxed_parallel`, …) owned its own thread pool, termination
//! logic and queue wiring; now there is exactly one worker-pool
//! implementation and everything else is a task handler.
//!
//! ## Architecture
//!
//! ```text
//!   ┌───────────────────────────── run(queue, cfg, initial, handler) ──┐
//!   │                                                                  │
//!   │  worker 0          worker 1          …      worker T-1           │
//!   │  ┌──────────┐      ┌──────────┐             ┌──────────┐         │
//!   │  │ rng,stats│      │ rng,stats│             │ rng,stats│  per-   │
//!   │  │ Session: │      │ Session: │             │ Session: │  worker │
//!   │  │ pin, rng │      │ pin, rng │             │ pin, rng │  (no    │
//!   │  │ homes,buf│      │ homes,buf│             │ homes,buf│  locks) │
//!   │  └───┬──────┘      └───┬──────┘             └───┬──────┘         │
//!   │      │ pop(&mut session)│                       │                │
//!   │  ┌───▼─────────────────▼───────────────────────▼───┐             │
//!   │  │      Scheduler (sharded relaxed queue)          │             │
//!   │  │  shard₀  shard₁  shard₂  …  — homes ∪ steals    │             │
//!   │  └─────────────────────────────────────────────────┘             │
//!   │      ActiveCounter: queued + in-flight (+ buffered) → quiescence │
//!   └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * [`Scheduler`] abstracts the queue: relaxed priority schedulers
//!   (`ConcurrentMultiQueue`, `ConcurrentSprayList`,
//!   `DuplicateMultiQueue`), the relaxed FIFOs (`DCboQueue`,
//!   `DRaQueue`) and the bucketed hybrid (`BucketFifoQueue`, a relaxed
//!   FIFO of Δ-wide buckets over relaxed priority shard sets) all
//!   implement it, so one runtime serves priority-ordered (SSSP),
//!   label-ordered (greedy iterative algorithms), FIFO-ordered (BFS,
//!   label propagation, k-core) and bucket-ordered (barrier-free
//!   Δ-stepping) scenarios.
//! * Every worker owns one [`Scheduler::Session`] — *the* per-worker
//!   state object (epoch pin, shard-picker RNG, owned home shards,
//!   sticky peek cache, bounded spawn buffer), configured through
//!   [`RuntimeConfig::shards_per_worker`] / `spawn_batch` (env:
//!   `RSCHED_SHARDS_PER_WORKER`, `RSCHED_SPAWN_BATCH`).
//! * [`run`] drives the pool: pop → handler → ([`TaskOutcome`]) →
//!   re-queue blocked tasks, with quiescence termination detection
//!   ([`ActiveCounter`]) over queued-plus-in-flight tasks (buffered
//!   spawns included — sessions flush on every pop miss) — the only
//!   sound emptiness notion over relaxed queues, whose `pop == None`
//!   races with concurrent pushes.
//! * [`WorkerStats`] / [`PoolStats`] account pops, executed/stale/extra
//!   steps, spawn-vs-merge pushes, home-shard hits, choice-of-two
//!   steals, pop misses and publishing flushes, per worker, without a
//!   single shared atomic on the hot path; [`PoolStats`] carries both
//!   the worker-phase wall clock and the whole-call wall clock.
//! * When [`RuntimeConfig::telemetry`] is on (env `RSCHED_TELEMETRY`,
//!   default on), [`run`] brackets the computation with a
//!   `rsched_queues::telemetry` window and returns the captured
//!   per-op progress snapshot (CAS-retry / steal-round / sweep-length
//!   histograms, flush merge ratios, epoch-GC counters) in
//!   [`PoolStats::telemetry`] — the "practically wait-free" tail
//!   evidence for whatever queue the run drove. Disabled, every
//!   instrumentation point in the queues collapses to one relaxed
//!   atomic load and a predictable branch.
//! * When [`RuntimeConfig::trace`] is on (env `RSCHED_TRACE`, default
//!   off), the pool additionally feeds the **flight recorder**
//!   (`rsched_queues::trace`): per-worker lock-free event rings record
//!   task inject/pop/complete, steal rounds, flush publish/merge,
//!   park/unpark and drain with nanosecond timestamps, wrapping so a
//!   crash or stall always leaves each worker's last events
//!   inspectable. [`run`] and `ServiceHandle::join` are snapshot
//!   points: with `RSCHED_TRACE_OUT` set they export Chrome trace-event
//!   JSON that opens directly in Perfetto (`RSCHED_TRACE_EVENTS` sizes
//!   the rings). Disabled, each probe is the same one-relaxed-load-and-
//!   branch discipline as telemetry.
//! * [`map_chunks`] is the fork-join companion for level-synchronous
//!   phases (Δ-stepping's edge-relaxation passes).
//!
//! ## Quickstart: relaxed-FIFO BFS shape
//!
//! ```
//! use rsched_queues::{DCboQueue, QueueBuilder};
//! use rsched_runtime::{run, RuntimeConfig, TaskOutcome};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Tiny 4-cycle; dist converges to hop counts despite relaxed order.
//! let adj: Vec<Vec<usize>> = vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![2, 0]];
//! let dist: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(u64::MAX)).collect();
//! dist[0].store(0, Ordering::Release);
//! let frontier: DCboQueue<(usize, u64)> = QueueBuilder::new(8).seed(42).d_cbo();
//! let stats = run(
//!     &frontier,
//!     RuntimeConfig { threads: 4, seed: 1, ..RuntimeConfig::default() },
//!     [(0usize, 0u64)],
//!     |w, v, d| {
//!         if d > dist[v].load(Ordering::Acquire) {
//!             return TaskOutcome::Stale;
//!         }
//!         for &u in &adj[v] {
//!             if dist[u].fetch_min(d + 1, Ordering::AcqRel) > d + 1 {
//!                 w.spawn(u, d + 1);
//!             }
//!         }
//!         TaskOutcome::Executed
//!     },
//! );
//! assert_eq!(dist[2].load(Ordering::Acquire), 2);
//! assert!(stats.total.executed >= 4);
//! ```

mod adapters;
pub mod env;
pub mod pool;
pub mod service;
pub mod termination;

pub use pool::{
    map_chunks, run, PoolStats, RuntimeConfig, Scheduler, TaskOutcome, Worker, WorkerStats,
};
pub use service::{service, Injector, ServiceHandle};
pub use termination::{ActiveCounter, ShardedCounter};

// The worker-session vocabulary lives in `rsched-queues` (the sessions
// are queue state); re-exported here because every `Scheduler`
// implementor and consumer needs it.
pub use rsched_queues::{FlushReport, PopSource, PushOutcome, SessionConfig, SessionPush};

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_queues::{DCboQueue, QueueBuilder};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn independent_tasks_execute_exactly_once() {
        let n = 2_000usize;
        let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let queue = QueueBuilder::new(8).universe(n).multiqueue::<u64>();
        let stats = run(
            &queue,
            RuntimeConfig {
                threads: 4,
                seed: 3,
                ..RuntimeConfig::default()
            },
            (0..n).map(|i| (i, i as u64)),
            |_, item, _| {
                let was = done[item].swap(true, Ordering::AcqRel);
                assert!(!was, "task {item} executed twice");
                TaskOutcome::Executed
            },
        );
        assert_eq!(stats.total.executed, n as u64);
        assert_eq!(stats.total.extra, 0);
        assert_eq!(stats.total.pops, n as u64);
        assert!(done.iter().all(|d| d.load(Ordering::Acquire)));
        assert_eq!(stats.per_worker.len(), 4);
        let per_sum: u64 = stats.per_worker.iter().map(|w| w.pops).sum();
        assert_eq!(per_sum, stats.total.pops);
    }

    #[test]
    fn blocked_tasks_requeue_until_dependency_clears() {
        // A chain: task t depends on t-1. Heavy re-queueing, but exact
        // completion.
        let n = 300usize;
        let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let queue = QueueBuilder::new(8).universe(n).multiqueue::<u64>();
        let stats = run(
            &queue,
            RuntimeConfig {
                threads: 4,
                seed: 9,
                ..RuntimeConfig::default()
            },
            (0..n).map(|i| (i, i as u64)),
            |_, item, _| {
                if item > 0 && !done[item - 1].load(Ordering::Acquire) {
                    return TaskOutcome::Blocked;
                }
                let was = done[item].swap(true, Ordering::AcqRel);
                assert!(!was);
                TaskOutcome::Executed
            },
        );
        assert_eq!(stats.total.executed, n as u64);
        assert_eq!(
            stats.total.pops,
            stats.total.executed + stats.total.extra + stats.total.stale
        );
        assert!(stats.total.extra > 0, "a chain must block under relaxation");
    }

    #[test]
    fn dynamic_spawning_counts_add_up() {
        // Each seed task spawns a child chain through the FIFO scheduler;
        // total executed = sum of chain lengths; steal accounting sane.
        let frontier: DCboQueue<(usize, u64)> = QueueBuilder::new(8).seed(5).d_cbo();
        let executed = AtomicU64::new(0);
        let stats = run(
            &frontier,
            RuntimeConfig {
                threads: 4,
                seed: 2,
                ..RuntimeConfig::default()
            },
            (0..64usize).map(|i| (i, 8u64)),
            |w, item, budget| {
                executed.fetch_add(1, Ordering::Relaxed);
                if budget > 0 {
                    w.spawn(item, budget - 1);
                }
                TaskOutcome::Executed
            },
        );
        assert_eq!(stats.total.executed, 64 * 9);
        assert_eq!(stats.total.executed, executed.load(Ordering::Acquire));
        assert_eq!(stats.total.spawned, 64 * 8);
        assert!(stats.total.steals <= stats.total.pops);
    }

    #[test]
    fn single_worker_runs_inline_order() {
        let queue = QueueBuilder::new(1).universe(100).multiqueue::<u64>();
        let order = std::sync::Mutex::new(Vec::new());
        run(
            &queue,
            RuntimeConfig {
                threads: 1,
                seed: 0,
                ..RuntimeConfig::default()
            },
            (0..100usize).map(|i| (i, i as u64)),
            |_, item, _| {
                order.lock().unwrap().push(item);
                TaskOutcome::Executed
            },
        );
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..100).collect::<Vec<_>>(), "1 queue = exact order");
    }

    #[test]
    fn map_chunks_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1usize, 3, 8] {
            let partials = map_chunks(threads, &items, |c| c.iter().sum::<u64>());
            assert_eq!(partials.iter().sum::<u64>(), items.iter().sum::<u64>());
        }
        assert!(map_chunks(4, &[] as &[u64], |c| c.len()).is_empty());
    }
}
