//! The worker-pool scheduler runtime.
//!
//! [`run`] is the single thread-pool / termination-detection
//! implementation in the workspace: every truly concurrent executor
//! (`run_relaxed_parallel`, the concurrent SSSP family, relaxed-FIFO BFS,
//! k-core peeling) is a thin handler over it. The runtime owns
//!
//! * the worker threads (scoped, one RNG stream per worker);
//! * the pop → handle → re-queue loop with separate backoffs for
//!   "queue empty" and "popped a blocked task";
//! * quiescence termination detection ([`ActiveCounter`]) over queued
//!   plus in-flight tasks;
//! * per-worker statistics ([`WorkerStats`]) kept in plain worker-local
//!   memory and aggregated lock-free at join time ([`PoolStats`]).
//!
//! The queue behind the runtime is anything implementing [`Scheduler`]:
//! the relaxed priority schedulers (`ConcurrentMultiQueue`,
//! `ConcurrentSprayList`, `DuplicateMultiQueue`) for label- or
//! distance-ordered work, and the relaxed FIFO `DCboQueue` for
//! frontier-ordered work. Sharded queues expose worker affinity through
//! [`Scheduler::pop_from`], which reports whether the pop *stole* from a
//! foreign shard — the choice-of-two stealing statistic.

use crate::termination::ActiveCounter;
use crossbeam::utils::Backoff;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rsched_queues::PinSession;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// A concurrent task queue the runtime can drive.
///
/// `P` is the task's scheduling payload: a priority for relaxed priority
/// queues, a carried value (e.g. BFS depth) for relaxed FIFOs.
pub trait Scheduler<P: Copy>: Sync {
    /// Enqueue `item` with payload `prio`.
    ///
    /// Returns `true` if a **new** element entered the queue, `false` if
    /// an existing entry was merged (decrease-key). The runtime uses the
    /// return value to keep its termination counter exact.
    fn push(&self, item: usize, prio: P, rng: &mut SmallRng) -> bool;

    /// Relaxed pop. `None` is a hint, not a linearizable emptiness check;
    /// the runtime owns termination detection.
    fn pop(&self, rng: &mut SmallRng) -> Option<(usize, P)>;

    /// Pop with worker affinity: implementations with per-worker shards
    /// may prefer the worker's `home` shard and report `true` when the
    /// element was stolen from a foreign shard instead. The default
    /// ignores affinity and never reports a steal.
    fn pop_from(&self, home: usize, rng: &mut SmallRng) -> Option<((usize, P), bool)> {
        let _ = home;
        self.pop(rng).map(|t| (t, false))
    }

    /// An amortized epoch pin each worker holds across its pop loop
    /// (ticked once per pop). Inert by default; schedulers backed by
    /// epoch-reclaimed lock-free shards return a live session so their
    /// per-operation pins collapse to counter bumps.
    fn pin_session(&self) -> rsched_queues::PinSession {
        rsched_queues::PinSession::none()
    }

    /// [`push`](Self::push) under the worker's held [`PinSession`]:
    /// epoch-backed schedulers borrow the session's pin instead of
    /// entering the epoch scheme (a TLS hop plus a counter bump) per
    /// operation. The default ignores the session.
    fn push_in(
        &self,
        item: usize,
        prio: P,
        rng: &mut SmallRng,
        _session: &rsched_queues::PinSession,
    ) -> bool {
        self.push(item, prio, rng)
    }

    /// [`pop_from`](Self::pop_from) under the worker's held
    /// [`PinSession`]; same contract, same default.
    fn pop_from_in(
        &self,
        home: usize,
        rng: &mut SmallRng,
        _session: &rsched_queues::PinSession,
    ) -> Option<((usize, P), bool)> {
        self.pop_from(home, rng)
    }
}

/// What the handler did with a popped task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The task was processed; its children (if any) were spawned by the
    /// handler.
    Executed,
    /// The task's payload was outdated (e.g. a stale SSSP distance); the
    /// pop is counted but nothing was done.
    Stale,
    /// The task's dependencies are unsatisfied. The runtime re-queues it
    /// at its original payload, counts an extra step, and backs off so
    /// blocked-dominated queues do not degenerate into spin-requeue loops.
    Blocked,
}

/// Runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Base RNG seed; per-worker streams derive from it.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            seed: 0,
        }
    }
}

impl RuntimeConfig {
    /// A config with `threads` workers and seed 0.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// Counters one worker accumulates locally (no atomics — each worker owns
/// its struct and the pool aggregates at join time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Successful pops from the scheduler.
    pub pops: u64,
    /// Pops whose handler returned [`TaskOutcome::Executed`].
    pub executed: u64,
    /// Pops whose handler returned [`TaskOutcome::Stale`].
    pub stale: u64,
    /// Pops whose handler returned [`TaskOutcome::Blocked`] (the paper's
    /// extra steps); each one was re-queued.
    pub extra: u64,
    /// `spawn` calls that inserted a new element.
    pub spawned: u64,
    /// `spawn` calls merged into an existing entry (decrease-key hits).
    pub merged: u64,
    /// Pops that took an element from a foreign shard of a
    /// worker-affine scheduler.
    pub steals: u64,
}

impl WorkerStats {
    fn merge(&mut self, other: &WorkerStats) {
        self.pops += other.pops;
        self.executed += other.executed;
        self.stale += other.stale;
        self.extra += other.extra;
        self.spawned += other.spawned;
        self.merged += other.merged;
        self.steals += other.steals;
    }
}

/// Aggregated result of a [`run`].
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Sum over workers.
    pub total: WorkerStats,
    /// Per-worker breakdown, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
    /// Wall-clock time of the worker phase (excludes initial seeding).
    pub wall: Duration,
}

impl PoolStats {
    /// `pops / executed` (1.0 = no wasted pops).
    pub fn overhead(&self) -> f64 {
        if self.total.executed == 0 {
            1.0
        } else {
            self.total.pops as f64 / self.total.executed as f64
        }
    }
}

/// Per-worker execution context handed to the task handler.
///
/// The handler uses it to [`spawn`](Worker::spawn) child tasks and to draw
/// worker-local randomness; all bookkeeping for termination detection and
/// statistics happens inside.
pub struct Worker<'a, P: Copy, S: Scheduler<P> + ?Sized> {
    /// Worker id in `0..threads`.
    pub tid: usize,
    rng: SmallRng,
    queue: &'a S,
    counter: &'a ActiveCounter,
    stats: WorkerStats,
    /// The worker's amortized epoch pin, threaded through every queue
    /// operation (`push_in`/`pop_from_in`) so epoch-backed schedulers
    /// never re-enter the reclamation scheme per op.
    session: PinSession,
    _payload: PhantomData<P>,
}

impl<P: Copy, S: Scheduler<P> + ?Sized> Worker<'_, P, S> {
    /// Enqueue a child task. Safe against the termination race: the
    /// element is announced to the quiescence counter before it becomes
    /// poppable, and merged pushes (decrease-key hits) retract the
    /// announcement.
    pub fn spawn(&mut self, item: usize, prio: P) {
        self.counter.task_added();
        let queue = self.queue;
        if queue.push_in(item, prio, &mut self.rng, &self.session) {
            self.stats.spawned += 1;
        } else {
            self.counter.task_done();
            self.stats.merged += 1;
        }
    }

    /// The worker's private RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Drive `queue` to quiescence with `cfg.threads` workers.
///
/// `initial` seeds the queue before workers start. `handler` is called
/// once per successful pop with the worker context, the item and its
/// payload, and reports what happened as a [`TaskOutcome`]; children are
/// spawned from inside the handler via [`Worker::spawn`]. The call
/// returns when every task is done and no worker can produce more — the
/// quiescence point of the whole computation.
///
/// # Examples
///
/// ```
/// use rsched_queues::ConcurrentMultiQueue;
/// use rsched_runtime::{run, RuntimeConfig, TaskOutcome};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // Count down from each seed task, spawning task-1 until zero.
/// let queue = ConcurrentMultiQueue::<u64>::new(8);
/// let hits = AtomicU64::new(0);
/// let stats = run(
///     &queue,
///     RuntimeConfig { threads: 4, seed: 7 },
///     (0..100usize).map(|i| (i, i as u64)),
///     |w, item, prio| {
///         hits.fetch_add(1, Ordering::Relaxed);
///         if item > 0 && prio > 0 {
///             w.spawn(item - 1, prio - 1);
///         }
///         TaskOutcome::Executed
///     },
/// );
/// assert_eq!(stats.total.executed, hits.load(Ordering::Relaxed));
/// assert!(stats.total.executed >= 100);
/// ```
pub fn run<P, S, F>(
    queue: &S,
    cfg: RuntimeConfig,
    initial: impl IntoIterator<Item = (usize, P)>,
    handler: F,
) -> PoolStats
where
    P: Copy + Send,
    S: Scheduler<P> + ?Sized,
    F: Fn(&mut Worker<'_, P, S>, usize, P) -> TaskOutcome + Sync,
{
    assert!(cfg.threads >= 1, "runtime needs at least one worker");
    let counter = ActiveCounter::new();
    let mut seed_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_1417_C0DE_D00D);
    for (item, prio) in initial {
        counter.task_added();
        if !queue.push(item, prio, &mut seed_rng) {
            counter.task_done();
        }
    }
    let start = Instant::now();
    let per_worker: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let counter = &counter;
                let handler = &handler;
                scope.spawn(move || {
                    let mut worker = Worker {
                        tid,
                        rng: SmallRng::seed_from_u64(
                            cfg.seed ^ (tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ),
                        queue,
                        counter,
                        stats: WorkerStats::default(),
                        session: queue.pin_session(),
                        _payload: PhantomData,
                    };
                    worker_loop(&mut worker, handler);
                    worker.stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runtime worker panicked"))
            .collect()
    });
    let wall = start.elapsed();
    debug_assert!(counter.is_quiescent());
    let mut total = WorkerStats::default();
    for w in &per_worker {
        total.merge(w);
    }
    PoolStats {
        total,
        per_worker,
        wall,
    }
}

fn worker_loop<P, S, F>(worker: &mut Worker<'_, P, S>, handler: &F)
where
    P: Copy,
    S: Scheduler<P> + ?Sized,
    F: Fn(&mut Worker<'_, P, S>, usize, P) -> TaskOutcome,
{
    let backoff = Backoff::new();
    // Separate backoff for blocked pops: when the queue front is dominated
    // by blocked tasks, a worker would otherwise spin pop→re-queue→pop on
    // the same elements while the worker holding their dependency makes
    // progress. Without it the extra-step count measures spinning, not
    // scheduling.
    let blocked = Backoff::new();
    loop {
        worker.session.tick();
        let queue = worker.queue;
        match queue.pop_from_in(worker.tid, &mut worker.rng, &worker.session) {
            Some(((item, prio), stolen)) => {
                backoff.reset();
                worker.stats.pops += 1;
                if stolen {
                    worker.stats.steals += 1;
                }
                match handler(worker, item, prio) {
                    TaskOutcome::Executed => {
                        worker.stats.executed += 1;
                        blocked.reset();
                    }
                    TaskOutcome::Stale => {
                        worker.stats.stale += 1;
                    }
                    TaskOutcome::Blocked => {
                        worker.stats.extra += 1;
                        // Re-queue at the original payload. spawn announces
                        // the element before inserting, so the quiescence
                        // check cannot fire in between.
                        worker.spawn(item, prio);
                        blocked.snooze();
                    }
                }
                worker.counter.task_done();
            }
            None => {
                if worker.counter.wait_or_quiescent(&backoff) {
                    break;
                }
            }
        }
    }
}

/// Fork-join companion to [`run`]: apply `f` to near-equal chunks of
/// `items` on up to `threads` workers and collect the results in chunk
/// order. Used by level-synchronous algorithms (Δ-stepping's light/heavy
/// passes) that need data parallelism rather than a task queue. Runs
/// inline when `threads == 1` or there is at most one chunk's worth of
/// work.
pub fn map_chunks<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(threads >= 1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(threads).max(1);
    if threads == 1 || items.len() <= chunk {
        return vec![f(items)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| scope.spawn(|| f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map_chunks worker panicked"))
            .collect()
    })
}
