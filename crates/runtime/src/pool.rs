//! The worker-pool scheduler runtime.
//!
//! [`run`] is the single thread-pool / termination-detection
//! implementation in the workspace: every truly concurrent executor
//! (`run_relaxed_parallel`, the concurrent SSSP family, relaxed-FIFO BFS,
//! label propagation, k-core peeling) is a thin handler over it. The
//! runtime owns
//!
//! * the worker threads (scoped, one RNG stream per worker);
//! * one **worker session** per thread ([`Scheduler::Session`]) carrying
//!   every piece of per-worker queue state — the amortized epoch pin,
//!   the shard-picker RNG, the owned home shards, the sticky peek cache
//!   and the bounded spawn buffer;
//! * the pop → handle → re-queue loop with separate backoffs for
//!   "queue empty" and "popped a blocked task", flushing the session's
//!   spawn buffer on every pop miss so parked tasks can never stall
//!   termination;
//! * quiescence termination detection ([`ActiveCounter`]) over queued
//!   plus in-flight tasks (buffered spawns count as in flight until
//!   their flush resolves them);
//! * per-worker statistics ([`WorkerStats`]) kept in plain worker-local
//!   memory and aggregated lock-free at join time ([`PoolStats`]).
//!
//! The queue behind the runtime is anything implementing [`Scheduler`]:
//! the relaxed priority schedulers (`ConcurrentMultiQueue`,
//! `ConcurrentSprayList`, `DuplicateMultiQueue`) for label- or
//! distance-ordered work, and the relaxed FIFOs (`DCboQueue`,
//! `DRaQueue`) for frontier-ordered work. Sessions expose worker
//! locality through [`PopSource`]: home-shard hits and choice-of-two
//! steals are folded into [`WorkerStats::home_hits`] /
//! [`WorkerStats::steals`].

use crate::termination::ActiveCounter;
use crossbeam::utils::Backoff;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rsched_queues::telemetry::{self, TelemetrySnapshot};
use rsched_queues::trace::{self, EventKind};
use rsched_queues::{FlushReport, PopSource, PushOutcome, SessionConfig, SessionPush};
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// A concurrent task queue the runtime can drive.
///
/// `P` is the task's scheduling payload: a priority for relaxed priority
/// queues, a carried value (e.g. BFS depth) for relaxed FIFOs.
///
/// Every operation flows through the scheduler's [`Session`] — the one
/// worker-owned state object of the workspace (replacing the earlier
/// `push_in`/`pop_from_in` method pairs, the MultiQueue `StickySession`
/// and the thread-local picker RNGs). A session may buffer pushes; the
/// worker loop calls [`flush`](Scheduler::flush) on every pop miss, so
/// implementations are free to park spawns as long as a flush publishes
/// them all.
///
/// [`Session`]: Scheduler::Session
pub trait Scheduler<P: Copy>: Sync {
    /// The worker-owned session state. Created inside each worker
    /// thread (it is not required to be `Send`), dropped when the
    /// worker exits — after a final flush.
    type Session;

    /// Open a session for one worker; `cfg` carries the worker id, the
    /// pool width, the derived seed and the session tuning knobs.
    fn open_session(&self, cfg: &SessionConfig) -> Self::Session;

    /// Enqueue `item` with payload `prio` through `session`.
    ///
    /// The [`PushOutcome`] is the conservation signal: `Inserted` and
    /// `Buffered` elements are presumed net-new, `Merged` ones are not,
    /// and any side-effect flush reports how many presumed-new parked
    /// elements actually merged. The runtime uses it to keep its
    /// termination counter exact.
    fn push(&self, session: &mut Self::Session, item: usize, prio: P) -> PushOutcome;

    /// Relaxed pop through `session`. `None` is a hint, not a
    /// linearizable emptiness check; the runtime owns termination
    /// detection. The [`PopSource`] reports locality (home shard / peek
    /// cache hit vs steal).
    fn pop(&self, session: &mut Self::Session) -> Option<((usize, P), PopSource)>;

    /// Publish everything parked in the session's spawn buffer. The
    /// default is for schedulers that never buffer.
    fn flush(&self, session: &mut Self::Session) -> FlushReport {
        let _ = session;
        FlushReport::default()
    }
}

/// What the handler did with a popped task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The task was processed; its children (if any) were spawned by the
    /// handler.
    Executed,
    /// The task's payload was outdated (e.g. a stale SSSP distance); the
    /// pop is counted but nothing was done.
    Stale,
    /// The task's dependencies are unsatisfied. The runtime re-queues it
    /// at its original payload, counts an extra step, and backs off so
    /// blocked-dominated queues do not degenerate into spin-requeue loops.
    Blocked,
}

/// Runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Base RNG seed; per-worker streams derive from it.
    pub seed: u64,
    /// Home shards owned per worker (FIFO schedulers drain them before
    /// stealing). Defaults to the `RSCHED_SHARDS_PER_WORKER` environment
    /// variable, else 1; `0` disables affinity.
    pub shards_per_worker: usize,
    /// Spawn-buffer capacity per worker session; spawns park there and
    /// publish as one batch. Defaults to the `RSCHED_SPAWN_BATCH`
    /// environment variable, else 1 (publish immediately).
    pub spawn_batch: usize,
    /// Adaptive spawn batching: sessions start unbatched, double their
    /// live buffer toward `spawn_batch` while home-shard pops hit, and
    /// halve toward 1 on pop misses (the quiescence signal). Defaults
    /// to the `RSCHED_SPAWN_BATCH_ADAPTIVE` environment variable
    /// (non-zero enables), else off.
    pub spawn_batch_adaptive: bool,
    /// How many consecutive pops may reuse a MultiQueue session's
    /// sticky peek cache before a forced re-sample; `1` (the default)
    /// re-samples every pop — the classic two-choice protocol.
    /// Defaults to the `RSCHED_STICKINESS` environment variable, else 1.
    pub stickiness: usize,
    /// Δ (bucket width) override for the bucket-hybrid schedulers built
    /// by the algorithms layer (`relaxed_delta_stepping`); `0` keeps
    /// the caller's Δ argument. Defaults to the `RSCHED_DELTA`
    /// environment variable, else 0.
    pub delta: u64,
    /// Priority shards per bucket for the bucket hybrid; `0` lets the
    /// algorithm pick (2 × threads). Defaults to the
    /// `RSCHED_BUCKET_SHARDS` environment variable, else 0.
    pub bucket_shards: usize,
    /// Per-op progress telemetry (retry/steal/sweep histograms, event
    /// counters — see `rsched_queues::telemetry`). When off, every
    /// instrumentation point is one relaxed load and a branch. Defaults
    /// to the `RSCHED_TELEMETRY` environment variable (`0` disables),
    /// else on.
    pub telemetry: bool,
    /// Flight-recorder tracing (per-worker event rings + Chrome-trace
    /// export — see `rsched_queues::trace`). When off (the default),
    /// every instrumentation point is one relaxed load and a branch.
    /// Defaults to the `RSCHED_TRACE` environment variable, else off.
    pub trace: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        use crate::env::{env_u64, env_usize};
        Self {
            threads: 4,
            seed: 0,
            shards_per_worker: env_usize("RSCHED_SHARDS_PER_WORKER", 1),
            spawn_batch: env_usize("RSCHED_SPAWN_BATCH", 1),
            spawn_batch_adaptive: env_usize("RSCHED_SPAWN_BATCH_ADAPTIVE", 0) != 0,
            stickiness: env_usize("RSCHED_STICKINESS", 1).max(1),
            delta: env_u64("RSCHED_DELTA", 0),
            bucket_shards: env_usize("RSCHED_BUCKET_SHARDS", 0),
            telemetry: env_usize("RSCHED_TELEMETRY", 1) != 0,
            trace: env_usize("RSCHED_TRACE", 0) != 0,
        }
    }
}

impl RuntimeConfig {
    /// A config with `threads` workers and seed 0.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// The session config for worker `tid` under this runtime config.
    pub(crate) fn session_config(&self, tid: usize) -> SessionConfig {
        SessionConfig {
            tid,
            workers: self.threads.max(1),
            seed: self.seed ^ (tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            shards_per_worker: self.shards_per_worker,
            spawn_batch: self.spawn_batch,
            adaptive_spawn: self.spawn_batch_adaptive,
            stickiness: self.stickiness.max(1),
        }
    }
}

/// Counters one worker accumulates locally (no atomics — each worker owns
/// its struct and the pool aggregates at join time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Successful pops from the scheduler.
    pub pops: u64,
    /// Pops whose handler returned [`TaskOutcome::Executed`].
    pub executed: u64,
    /// Pops whose handler returned [`TaskOutcome::Stale`].
    pub stale: u64,
    /// Pops whose handler returned [`TaskOutcome::Blocked`] (the paper's
    /// extra steps); each one was re-queued.
    pub extra: u64,
    /// `spawn` calls that inserted a net-new element (buffered spawns
    /// count here until a flush reports them merged).
    pub spawned: u64,
    /// `spawn` calls merged into an existing entry (decrease-key hits,
    /// in the shared structure or inside the session's spawn buffer).
    pub merged: u64,
    /// Pops served by one of the worker's own home shards, or by the
    /// MultiQueue session's sticky peek cache.
    pub home_hits: u64,
    /// Pops that took an element from a foreign shard of a
    /// worker-affine scheduler.
    pub steals: u64,
    /// Pops that came back empty (each one triggers a session flush
    /// before the worker considers waiting).
    pub pop_misses: u64,
    /// Pop-miss flushes that actually published parked spawns.
    pub flushes: u64,
}

impl WorkerStats {
    pub(crate) fn merge(&mut self, other: &WorkerStats) {
        self.pops += other.pops;
        self.executed += other.executed;
        self.stale += other.stale;
        self.extra += other.extra;
        self.spawned += other.spawned;
        self.merged += other.merged;
        self.home_hits += other.home_hits;
        self.steals += other.steals;
        self.pop_misses += other.pop_misses;
        self.flushes += other.flushes;
    }
}

/// Aggregated result of a [`run`].
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Sum over workers.
    pub total: WorkerStats,
    /// Per-worker breakdown, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
    /// Wall-clock time of the worker phase (excludes initial seeding).
    pub wall: Duration,
    /// Wall-clock time of the whole [`run`] call, seeding included —
    /// benches no longer re-derive elapsed time around the call.
    pub total_wall: Duration,
    /// Per-op progress telemetry captured over this run, when
    /// [`RuntimeConfig::telemetry`] was on. The underlying state is
    /// process-global: concurrent `run` calls fold into one snapshot.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl PoolStats {
    /// `pops / executed` (1.0 = no wasted pops).
    pub fn overhead(&self) -> f64 {
        if self.total.executed == 0 {
            1.0
        } else {
            self.total.pops as f64 / self.total.executed as f64
        }
    }
}

/// Per-worker execution context handed to the task handler.
///
/// The handler uses it to [`spawn`](Worker::spawn) child tasks and to draw
/// worker-local randomness; all bookkeeping for termination detection and
/// statistics happens inside. The worker owns its scheduler
/// [`Session`](Scheduler::Session) — the queue itself holds no
/// per-thread state.
pub struct Worker<'a, P: Copy, S: Scheduler<P> + ?Sized> {
    /// Worker id in `0..threads`.
    pub tid: usize,
    rng: SmallRng,
    queue: &'a S,
    counter: &'a ActiveCounter,
    pub(crate) stats: WorkerStats,
    session: S::Session,
    _payload: PhantomData<P>,
}

impl<'a, P: Copy, S: Scheduler<P> + ?Sized> Worker<'a, P, S> {
    /// Enqueue a child task. Safe against the termination race: the
    /// element is announced to the quiescence counter before it becomes
    /// poppable (buffered spawns stay announced until their flush), and
    /// merged pushes retract the announcement.
    pub fn spawn(&mut self, item: usize, prio: P) {
        self.counter.task_added();
        trace::emit(EventKind::TaskInject, item as u64);
        let queue = self.queue;
        let out = queue.push(&mut self.session, item, prio);
        match out.push {
            SessionPush::Inserted | SessionPush::Buffered => self.stats.spawned += 1,
            SessionPush::Merged => {
                self.counter.task_done();
                self.stats.merged += 1;
            }
        }
        self.absorb_flush(out.flushed);
    }

    /// Fold a flush report into the stats and the termination counter:
    /// parked elements were presumed net-new when announced; the ones
    /// that merged retract their announcement now.
    fn absorb_flush(&mut self, report: FlushReport) {
        if report.published > 0 {
            trace::emit(EventKind::FlushPublish, report.published);
            if report.merged > 0 {
                trace::emit(EventKind::FlushMerge, report.merged);
            }
        }
        if report.merged > 0 {
            self.stats.spawned -= report.merged;
            self.stats.merged += report.merged;
            self.counter.tasks_done(report.merged);
        }
    }

    /// The worker's private RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Build the worker context for `tid`, opening its scheduler session
    /// (shared between [`run`]'s scoped workers and the long-lived
    /// service pool in [`crate::service`]).
    pub(crate) fn open(
        tid: usize,
        cfg: &RuntimeConfig,
        queue: &'a S,
        counter: &'a ActiveCounter,
    ) -> Self {
        let session_cfg = cfg.session_config(tid);
        Worker {
            tid,
            rng: SmallRng::seed_from_u64(session_cfg.seed),
            queue,
            counter,
            stats: WorkerStats::default(),
            session: queue.open_session(&session_cfg),
            _payload: PhantomData,
        }
    }

    /// One pop's worth of work: account the pop source, run the handler,
    /// fold the outcome into the stats/termination counter (re-queueing
    /// blocked tasks with the caller's blocked-backoff). The body of the
    /// `Some` arm of every worker loop.
    pub(crate) fn execute_popped<F>(
        &mut self,
        handler: &F,
        item: usize,
        prio: P,
        source: PopSource,
        blocked: &Backoff,
    ) where
        F: Fn(&mut Worker<'_, P, S>, usize, P) -> TaskOutcome,
    {
        self.stats.pops += 1;
        match source {
            PopSource::Home => self.stats.home_hits += 1,
            PopSource::Steal => {
                self.stats.steals += 1;
                trace::emit(EventKind::StealRound, item as u64);
            }
            PopSource::Shared => {}
        }
        trace::emit(EventKind::TaskPop, item as u64);
        // Per-op duration ticks: only pay for the clock reads
        // when the telemetry window is actually recording.
        let op_start = telemetry::enabled().then(Instant::now);
        match handler(self, item, prio) {
            TaskOutcome::Executed => {
                self.stats.executed += 1;
                blocked.reset();
            }
            TaskOutcome::Stale => {
                self.stats.stale += 1;
            }
            TaskOutcome::Blocked => {
                self.stats.extra += 1;
                // Re-queue at the original payload. spawn announces
                // the element before inserting, so the quiescence
                // check cannot fire in between.
                self.spawn(item, prio);
                blocked.snooze();
            }
        }
        if let Some(t) = op_start {
            telemetry::record(
                telemetry::OpHist::Tick,
                t.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        trace::emit(EventKind::TaskComplete, item as u64);
        self.counter.task_done();
    }

    /// One relaxed pop through the worker's own session.
    pub(crate) fn try_pop(&mut self) -> Option<((usize, P), PopSource)> {
        self.queue.pop(&mut self.session)
    }

    /// The pool's termination counter (the service loop checks
    /// quiescence against it directly).
    pub(crate) fn counter(&self) -> &ActiveCounter {
        self.counter
    }

    /// The pop-miss protocol: publish any parked spawns before the
    /// caller may conclude emptiness (the quiescence counter still
    /// carries them, so waiting with a non-empty buffer could deadlock
    /// the pool). Returns `true` if the flush published parked elements
    /// — the caller should retry popping instead of waiting.
    pub(crate) fn flush_on_miss(&mut self) -> bool {
        self.stats.pop_misses += 1;
        let report = self.queue.flush(&mut self.session);
        let had_parked = report.published > 0;
        if had_parked {
            self.stats.flushes += 1;
        }
        self.absorb_flush(report);
        had_parked
    }
}

/// Drive `queue` to quiescence with `cfg.threads` workers.
///
/// `initial` seeds the queue before workers start (through a session of
/// its own, so batching applies there too). `handler` is called once per
/// successful pop with the worker context, the item and its payload, and
/// reports what happened as a [`TaskOutcome`]; children are spawned from
/// inside the handler via [`Worker::spawn`]. The call returns when every
/// task is done and no worker can produce more — the quiescence point of
/// the whole computation.
///
/// # Examples
///
/// ```
/// use rsched_queues::QueueBuilder;
/// use rsched_runtime::{run, RuntimeConfig, TaskOutcome};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // Count down from each seed task, spawning task-1 until zero.
/// let queue = QueueBuilder::new(8).multiqueue::<u64>();
/// let hits = AtomicU64::new(0);
/// let stats = run(
///     &queue,
///     RuntimeConfig { threads: 4, seed: 7, ..RuntimeConfig::default() },
///     (0..100usize).map(|i| (i, i as u64)),
///     |w, item, prio| {
///         hits.fetch_add(1, Ordering::Relaxed);
///         if item > 0 && prio > 0 {
///             w.spawn(item - 1, prio - 1);
///         }
///         TaskOutcome::Executed
///     },
/// );
/// assert_eq!(stats.total.executed, hits.load(Ordering::Relaxed));
/// assert!(stats.total.executed >= 100);
/// ```
pub fn run<P, S, F>(
    queue: &S,
    cfg: RuntimeConfig,
    initial: impl IntoIterator<Item = (usize, P)>,
    handler: F,
) -> PoolStats
where
    P: Copy + Send,
    S: Scheduler<P> + ?Sized,
    F: Fn(&mut Worker<'_, P, S>, usize, P) -> TaskOutcome + Sync,
{
    assert!(cfg.threads >= 1, "runtime needs at least one worker");
    let t0 = Instant::now();
    telemetry::set_enabled(cfg.telemetry);
    trace::set_enabled(cfg.trace);
    if cfg.telemetry {
        // Start a fresh measurement window covering seeding + workers.
        // The state is process-global; overlapping runs share a window.
        telemetry::reset();
    }
    let counter = ActiveCounter::new();
    {
        // Seed through a session of the seeding thread's own; the final
        // flush resolves any parked seeds before workers start.
        let seed_cfg = SessionConfig {
            seed: cfg.seed ^ 0x5EED_1417_C0DE_D00D,
            ..cfg.session_config(0)
        };
        let mut seeder = queue.open_session(&seed_cfg);
        for (item, prio) in initial {
            counter.task_added();
            let out = queue.push(&mut seeder, item, prio);
            if out.push == SessionPush::Merged {
                counter.task_done();
            }
            counter.tasks_done(out.flushed.merged);
        }
        let report = queue.flush(&mut seeder);
        counter.tasks_done(report.merged);
    }
    let start = Instant::now();
    let per_worker: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let counter = &counter;
                let handler = &handler;
                scope.spawn(move || {
                    let mut worker = Worker::open(tid, &cfg, queue, counter);
                    worker_loop(&mut worker, handler);
                    worker.stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runtime worker panicked"))
            .collect()
    });
    let wall = start.elapsed();
    debug_assert!(counter.is_quiescent());
    let mut total = WorkerStats::default();
    for w in &per_worker {
        total.merge(w);
    }
    // Scoped workers have exited (their recorders auto-flushed); the
    // seeding happened on this thread, so capture() folds it in too.
    let snapshot = cfg.telemetry.then(telemetry::capture);
    // A run() boundary is a flight-recorder snapshot point: workers are
    // quiescent, so the export sees consistent rings. Repeated runs
    // overwrite the file — it always holds the latest window, matching
    // the rings' own wrap-around semantics.
    trace::export_if_configured();
    PoolStats {
        total,
        per_worker,
        wall,
        total_wall: t0.elapsed(),
        telemetry: snapshot,
    }
}

fn worker_loop<P, S, F>(worker: &mut Worker<'_, P, S>, handler: &F)
where
    P: Copy,
    S: Scheduler<P> + ?Sized,
    F: Fn(&mut Worker<'_, P, S>, usize, P) -> TaskOutcome,
{
    let backoff = Backoff::new();
    // Separate backoff for blocked pops: when the queue front is dominated
    // by blocked tasks, a worker would otherwise spin pop→re-queue→pop on
    // the same elements while the worker holding their dependency makes
    // progress. Without it the extra-step count measures spinning, not
    // scheduling.
    let blocked = Backoff::new();
    loop {
        let queue = worker.queue;
        match queue.pop(&mut worker.session) {
            Some(((item, prio), source)) => {
                backoff.reset();
                worker.execute_popped(handler, item, prio, source, &blocked);
            }
            None => {
                if worker.flush_on_miss() {
                    continue;
                }
                if worker.counter.wait_or_quiescent(&backoff) {
                    trace::emit(EventKind::Drain, worker.tid as u64);
                    break;
                }
            }
        }
    }
}

/// Fork-join companion to [`run`]: apply `f` to near-equal chunks of
/// `items` on up to `threads` workers and collect the results in chunk
/// order. Used by level-synchronous algorithms (Δ-stepping's light/heavy
/// passes) that need data parallelism rather than a task queue. Runs
/// inline when `threads == 1` or there is at most one chunk's worth of
/// work.
pub fn map_chunks<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(threads >= 1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(threads).max(1);
    if threads == 1 || items.len() <= chunk {
        return vec![f(items)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| scope.spawn(|| f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map_chunks worker panicked"))
            .collect()
    })
}
