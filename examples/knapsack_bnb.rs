//! Branch-and-bound under relaxed scheduling: the Karp–Zhang setting.
//!
//! Best-first search expands the node with the best upper bound first; a
//! relaxed scheduler may expand less-promising nodes speculatively. The
//! optimum is unaffected — only the expansion count grows.
//!
//! ```text
//! cargo run --release --example knapsack_bnb
//! ```

use relaxed_schedulers::prelude::*;

fn main() {
    let inst = Knapsack::random(28, 2026);
    let optimum = inst.dp_optimum();
    println!("28-item knapsack, DP optimum = {optimum}\n");
    println!(
        "{:>22} {:>10} {:>12} {:>8}",
        "scheduler", "expanded", "pruned@pop", "value"
    );

    let show = |name: &str, stats: BnbStats| {
        assert_eq!(stats.best_value, optimum, "{name} lost the optimum!");
        println!(
            "{:>22} {:>10} {:>12} {:>8}",
            name, stats.expanded, stats.pruned_after_pop, stats.best_value
        );
    };
    show(
        "exact best-first",
        inst.solve(&mut Exact(IndexedBinaryHeap::new())),
    );
    for q in [4usize, 16, 64] {
        show(
            &format!("MultiQueue q={q}"),
            inst.solve(&mut SimMultiQueue::new(q, 7)),
        );
    }
    for k in [16usize, 128] {
        show(
            &format!("adversary k={k}"),
            inst.solve(&mut AdversarialScheduler::new(
                k,
                AdversaryStrategy::MaxRank,
            )),
        );
    }
    println!("\nevery scheduler found the optimum; relaxation only costs extra expansions ✓");
}
