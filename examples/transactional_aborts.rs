//! The transactional model (Section 4): execute BST-insertion sorting as
//! speculative transactions and count aborts against the Theorem 4.3 bound
//! `O(k²(C+k)² log n)`.
//!
//! ```text
//! cargo run --release --example transactional_aborts
//! ```

use relaxed_schedulers::prelude::*;
use rsched_core::theory;

fn main() {
    let n = 5000;
    println!("transactional execution of BST-sort ({n} tasks)\n");
    println!(
        "{:>4} {:>9} {:>9} {:>8} {:>10} {:>16}",
        "k", "duration", "aborts", "C_obs", "overhead", "k^2(C+k)^2 ln n"
    );
    for &k in &[2usize, 4, 8, 16] {
        for &duration in &[2usize, 6] {
            let alg = BstSort::random(n, 42);
            let stats = run_transactional(
                n,
                |i, j| alg.depends(i, j),
                TxConfig {
                    k,
                    duration,
                    strategy: TxStrategy::Random,
                    seed: 7,
                },
            );
            assert_eq!(stats.commits, n as u64);
            let bound = theory::thm43_aborts(k, stats.max_contention, n);
            println!(
                "{:>4} {:>9} {:>9} {:>8} {:>9.4}x {:>16.0}",
                k,
                duration,
                stats.aborts,
                stats.max_contention,
                (stats.commits + stats.aborts) as f64 / stats.commits as f64,
                bound
            );
        }
    }
    println!(
        "\naborted work stays far below both the task count and the \
         Theorem 4.3 envelope — speculation is cheap when dependencies are \
         shallow (expected O(log n) BST depth)."
    );
}
