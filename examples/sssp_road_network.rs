//! Road-network SSSP: the workload where relaxation overhead is visible
//! (Figure 1, middle row of the paper).
//!
//! Reproduces the paper's observation that the road network — high diameter,
//! high weight variance — shows measurably higher relaxation overhead than
//! the low-diameter random and social graphs. Optionally loads a real
//! DIMACS `.gr` file:
//!
//! ```text
//! cargo run --release --example sssp_road_network              # generated grid
//! cargo run --release --example sssp_road_network USA-road.gr  # real data
//! ```

use relaxed_schedulers::prelude::*;
use rsched_graph::{analysis, io};
use std::fs::File;

fn main() {
    let g = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading DIMACS graph from {path} ...");
            io::read_dimacs_gr(File::open(&path).expect("cannot open file"))
                .expect("cannot parse DIMACS .gr")
        }
        None => {
            println!("generating 300x300 road-like grid (use a .gr path to load real data)");
            grid_road(300, 300, 11)
        }
    };
    let n = g.num_vertices();
    let diameter = analysis::hop_diameter_estimate(&g, 2);
    let (wmin, wmax, cv) = analysis::weight_stats(&g).expect("graph has edges");
    println!(
        "n = {n}, m = {}, hop-diameter >= {diameter}, weights [{wmin}, {wmax}] (cv {cv:.2})",
        g.num_edges()
    );
    if let Some(r) = analysis::dmax_over_wmin(&g, 0) {
        println!("d_max / w_min = {r:.0}  (Theorem 6.1 parameter)");
    }

    let exact = dijkstra(&g, 0);
    let reachable = exact.dist.iter().filter(|&&d| d != INF).count();
    println!("\nexact tasks: {reachable}");

    println!(
        "\n{:>8} {:>12} {:>12} {:>10} {:>10}",
        "threads", "executed", "stale", "overhead", "time"
    );
    let available = std::thread::available_parallelism().map_or(4, |p| p.get());
    for threads in [1, 2, 4, available.min(16)] {
        let stats = parallel_sssp(
            &g,
            0,
            ParSsspConfig {
                threads,
                queue_multiplier: 2,
                seed: 3,
            },
        );
        assert_eq!(stats.dist, exact.dist);
        println!(
            "{:>8} {:>12} {:>12} {:>9.4}x {:>9.1?}",
            threads,
            stats.executed,
            stats.stale,
            stats.overhead(),
            stats.wall
        );
    }
    println!(
        "\nThe overhead here should be visibly larger than on the random graph \
         (try the quickstart example) — the paper attributes this to the \
         road network's high diameter and weight variance."
    );
}
