//! Delaunay triangulation under relaxed scheduling: build the same mesh
//! under the exact order, a MultiQueue, and a worst-case adversary, and
//! compare the wasted work (Section 3 / Theorem 3.3 of the paper).
//!
//! ```text
//! cargo run --release --example delaunay_mesh [n]
//! ```

use relaxed_schedulers::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("triangulating {n} random points under different schedulers\n");

    // Exact order (Algorithm 1).
    let mut exact_alg = DelaunayIncremental::random(n, 1 << 20, 1);
    let exact = run_exact(&mut exact_alg);
    println!(
        "exact scheduler:        {:>8} steps, {:>6} extra",
        exact.steps, exact.extra_steps
    );
    let mesh = exact_alg.state().mesh();
    println!(
        "  mesh: {} triangles ({} arena slots), {} point relocations",
        mesh.num_alive(),
        mesh.arena_len(),
        exact_alg.state().relocations()
    );

    // MultiQueue (Algorithm 2) at increasing relaxation.
    for q in [2usize, 8, 32] {
        let mut alg = DelaunayIncremental::random(n, 1 << 20, 1);
        let mut queue = SimMultiQueue::new(q, 99);
        let stats = run_relaxed(&mut alg, &mut queue);
        println!(
            "MultiQueue q={q:<3}:       {:>8} steps, {:>6} extra ({:.2}% overhead)",
            stats.steps,
            stats.extra_steps,
            100.0 * (stats.overhead() - 1.0)
        );
        assert_eq!(alg.state().mesh().num_alive(), 2 * n + 1);
    }

    // Worst-case dependency-aware adversary at fixed k.
    for k in [4usize, 16] {
        let mut alg = DelaunayIncremental::random(n, 1 << 20, 1);
        let stats = run_relaxed_with(&mut alg, k, |alg, w| {
            w.iter().position(|&t| !alg.deps_satisfied(t)).unwrap_or(0)
        });
        let bound = rsched_core::theory::thm33_extra_steps(k, n);
        println!(
            "adversary k={k:<3}:        {:>8} steps, {:>6} extra  (Thm 3.3 shape k^4 ln n = {bound:.0})",
            stats.steps, stats.extra_steps
        );
    }

    println!("\nall runs produce a valid Delaunay mesh of identical size ✓");
}
