//! Concurrent greedy MIS and coloring: out-of-order parallel execution with
//! deterministic results.
//!
//! The relaxed scheduler hands out vertices in a loose priority order, yet
//! because a task only runs after its higher-priority neighbours, the final
//! independent set and colouring are bit-identical to the sequential
//! algorithm's — determinism despite parallelism, the property that makes
//! relaxed schedulers safe for iterative algorithms.
//!
//! ```text
//! cargo run --release --example parallel_mis
//! ```

use relaxed_schedulers::prelude::*;
use rsched_algos::concurrent::{ConcurrentColoring, ConcurrentMis};
use rsched_algos::{GreedyColoring, GreedyMis};

fn main() {
    let n = 50_000;
    let g = power_law(n, 8, 1..=100, 21);
    println!(
        "graph: {} vertices, {} directed edges",
        g.num_vertices(),
        g.num_edges()
    );

    // --- MIS ---
    let alg = ConcurrentMis::new(&g, 99);
    let stats = run_relaxed_parallel(&alg, 4, 2, 1);
    let mis = alg.independent_set();
    let reference = GreedyMis::sequential_reference(&g, alg.permutation());
    let ref_set: Vec<usize> = reference
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(v, _)| v)
        .collect();
    assert_eq!(mis, ref_set, "parallel MIS must equal the sequential one");
    println!(
        "\nMIS: {} vertices selected; {} steps, {} wasted ({:.3}% overhead)",
        mis.len(),
        stats.steps,
        stats.extra_steps,
        100.0 * (stats.overhead() - 1.0)
    );

    // --- Coloring ---
    let alg = ConcurrentColoring::new(&g, 99);
    let stats = run_relaxed_parallel(&alg, 4, 2, 2);
    assert!(alg.verify_proper());
    let colors = alg.colors();
    let reference = GreedyColoring::sequential_reference(&g, alg.permutation());
    assert_eq!(colors, reference, "parallel coloring must equal sequential");
    let ncolors = colors
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len();
    println!(
        "coloring: {} colours used; {} steps, {} wasted ({:.3}% overhead)",
        ncolors,
        stats.steps,
        stats.extra_steps,
        100.0 * (stats.overhead() - 1.0)
    );
    println!("\nboth results verified identical to the sequential algorithm ✓");
}
