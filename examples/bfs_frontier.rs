//! Relaxed-FIFO BFS: run the runtime-backed concurrent BFS over a d-CBO
//! frontier on a random graph, verify the layering against exact BFS, and
//! show the two costs of relaxation side by side:
//!
//! * **executed overhead** — vertices expanded more than once because a
//!   provisional (too deep) hop count was popped before the true one;
//! * **frontier rank errors** — how far from global FIFO order the d-RA /
//!   d-CBO frontier actually dequeues, measured with the sequential
//!   rank-error instrumentation on the same shard counts.
//!
//! ```text
//! cargo run --release --example bfs_frontier
//! ```

use relaxed_schedulers::prelude::*;

/// Sequential rank-error profile of a relaxed FIFO on a drain workload.
fn fifo_profile<Q: RelaxedFifo<(u64, usize)>>(queue: Q, n: usize) -> FifoRankStats {
    let mut q = FifoRankTracker::new(queue);
    for i in 0..n {
        q.enqueue(i);
    }
    while q.dequeue().is_some() {}
    q.into_parts().1
}

fn main() {
    let n = 200_000;
    let m = 1_000_000;
    println!("generating G({n}, {m}) ...");
    let g = random_gnm(n, m, 1..=100, 42);

    // Exact baseline: every reachable vertex expanded exactly once.
    let exact = bfs(&g, 0);
    let reachable = exact.iter().filter(|&&d| d != INF).count();
    let depth = exact
        .iter()
        .filter(|&&d| d != INF)
        .max()
        .copied()
        .unwrap_or(0);
    println!("exact BFS: {reachable} reachable vertices, depth {depth}\n");

    let available = std::thread::available_parallelism().map_or(4, |p| p.get());
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>9} {:>8} {:>8} {:>10}",
        "threads", "shards", "executed", "stale", "overhead", "home", "steals", "time"
    );
    for threads in [1, 2, 4, available.min(8)] {
        let stats = parallel_bfs(
            &g,
            0,
            ParSsspConfig {
                threads,
                queue_multiplier: 2,
                seed: 7,
            },
        );
        assert_eq!(stats.dist, exact, "relaxed-FIFO BFS must stay exact");
        println!(
            "{:>8} {:>8} {:>10} {:>8} {:>8.4}x {:>8} {:>8} {:>9.1?}",
            threads,
            2 * threads,
            stats.executed,
            stats.stale,
            stats.overhead(),
            stats.home_hits,
            stats.steals,
            stats.wall
        );
    }
    println!("\ndistances verified identical to exact BFS ✓");

    // Why does the relaxed frontier stay nearly exact? Because choice-of-two
    // keeps FIFO rank errors around the shard count. Profile the frontier
    // structures themselves on a drain of `reachable` items.
    println!("\nfrontier rank errors (sequential profile, {reachable} items):");
    println!(
        "{:>14} {:>8} {:>10} {:>10} {:>10}",
        "queue", "shards", "mean_err", "p99_err", "max_err"
    );
    for shards in [4usize, 8, 16] {
        let dra = fifo_profile(QueueBuilder::new(shards).seed(7).d_ra(), reachable);
        let dcbo = fifo_profile(QueueBuilder::new(shards).seed(7).d_cbo(), reachable);
        for (name, s) in [("d-RA", dra), ("d-CBO", dcbo)] {
            println!(
                "{:>14} {:>8} {:>10.2} {:>10} {:>10}",
                name,
                shards,
                s.mean_error(),
                s.error_quantile(0.99),
                s.max_error
            );
        }
    }
}
