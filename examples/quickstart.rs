//! Quickstart: run parallel SSSP through a relaxed MultiQueue scheduler and
//! measure the relaxation overhead against exact Dijkstra.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use relaxed_schedulers::prelude::*;

fn main() {
    // The paper's "random" graph, scaled to laptop size: uniform G(n, m)
    // with uniform random weights in [1, 100].
    let n = 100_000;
    let m = 1_000_000;
    println!("generating G({n}, {m}) with weights 1..=100 ...");
    let g = random_gnm(n, m, 1..=100, 42);

    // Sequential baseline: exact scheduler processes each reachable vertex
    // exactly once.
    let exact = dijkstra(&g, 0);
    let reachable = exact.dist.iter().filter(|&&d| d != INF).count();
    println!(
        "exact Dijkstra: {} tasks ({} reachable vertices)",
        exact.pops, reachable
    );

    // Relaxed parallel runs: queues = 2 × threads, like Figure 1.
    let available = std::thread::available_parallelism().map_or(4, |p| p.get());
    println!(
        "\n{:>8} {:>10} {:>12} {:>10} {:>10}",
        "threads", "queues", "tasks", "overhead", "time"
    );
    for threads in [1, 2, 4, available.min(8)] {
        let stats = parallel_sssp(
            &g,
            0,
            ParSsspConfig {
                threads,
                queue_multiplier: 2,
                seed: 7,
            },
        );
        assert_eq!(stats.dist, exact.dist, "relaxed SSSP must stay exact");
        println!(
            "{:>8} {:>10} {:>12} {:>9.4}x {:>9.1?}",
            threads,
            2 * threads,
            stats.executed,
            stats.overhead(),
            stats.wall
        );
    }
    println!("\ndistances verified identical to exact Dijkstra ✓");
}
