//! Sorting by BST insertion under relaxed schedulers: extra steps vs n and
//! the MultiQueue inversion lower bound (Theorem 3.3 and Theorem 5.1 /
//! Claim 1 of the paper).
//!
//! ```text
//! cargo run --release --example sorting_inversions
//! ```

use relaxed_schedulers::prelude::*;
use rsched_core::theory;

fn main() {
    println!("== extra steps of BST-insertion sorting (Theorem 3.3 shape) ==\n");
    println!(
        "{:>8} {:>16} {:>16} {:>14}",
        "n", "MultiQueue(q=8)", "adversary(k=8)", "k^4 ln n"
    );
    for n in [1000usize, 4000, 16000, 64000] {
        let mut alg = BstSort::random(n, 5);
        let mq = run_relaxed(&mut alg, &mut SimMultiQueue::new(8, 3));
        let mut alg2 = BstSort::random(n, 5);
        let adv = run_relaxed_with(&mut alg2, 8, |a, w| {
            w.iter().position(|&t| !a.deps_satisfied(t)).unwrap_or(0)
        });
        println!(
            "{:>8} {:>16} {:>16} {:>14.0}",
            n,
            mq.extra_steps,
            adv.extra_steps,
            theory::thm33_extra_steps(8, n)
        );
        assert_eq!(alg.in_order_keys(), (0..n as u64).collect::<Vec<_>>());
    }

    println!("\n== Claim 1: Pr[task i+1 returned before task i] >= 1/8 ==\n");
    // Measure consecutive-label inversions of the MultiQueue directly.
    let n = 2000usize;
    let q = 8;
    let trials = 50;
    let mut inversions = 0u64;
    let mut pairs = 0u64;
    for seed in 0..trials {
        let mut queue = SimMultiQueue::new(q, seed);
        for i in 0..n {
            queue.insert(i, i as u64);
        }
        let mut pos = vec![0usize; n];
        let mut t = 0;
        while let Some((item, _)) = queue.pop_relaxed() {
            pos[item] = t;
            t += 1;
        }
        for i in 0..n - 1 {
            pairs += 1;
            if pos[i + 1] < pos[i] {
                inversions += 1;
            }
        }
    }
    let freq = inversions as f64 / pairs as f64;
    println!(
        "measured Pr[inv] = {freq:.3} over {pairs} consecutive pairs (paper lower bound: {:.3})",
        theory::CLAIM1_INVERSION_LOWER
    );
    assert!(freq >= theory::CLAIM1_INVERSION_LOWER * 0.9);
    println!("\nclaim verified empirically ✓");
}
